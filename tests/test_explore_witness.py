"""Tests for witness extraction and replay (repro.explore.witness)."""
import pytest

from repro.algorithms.visibility2 import ShibataGatheringAlgorithm
from repro.core.algorithm import FunctionAlgorithm
from repro.core.configuration import Configuration
from repro.core.engine import run_execution
from repro.core.trace import Outcome
from repro.enumeration.polyhex import enumerate_canonical_node_sets
from repro.explore import (
    build_transition_graph,
    classify,
    explore,
    find_witnesses,
    replay_witness,
)
from repro.grid.directions import Direction
from repro.viz.ascii_art import render_witness


@pytest.fixture(scope="module")
def shibata_ssync_report():
    return explore(algorithm_name="shibata-visibility2", size=5, mode="ssync")


def test_witnesses_exist_for_each_failing_root_class(shibata_ssync_report):
    report = shibata_ssync_report
    failing = set(report.root_census) - {"gathered", "safe"}
    assert failing <= set(report.witnesses)


def test_witnesses_replay_through_the_engine(shibata_ssync_report):
    algorithm = ShibataGatheringAlgorithm()
    for witness in shibata_ssync_report.witnesses.values():
        final = replay_witness(witness, algorithm)
        assert final == witness.final


def test_witness_steps_carry_consistent_moves(shibata_ssync_report):
    for witness in shibata_ssync_report.witnesses.values():
        for step in witness.steps:
            assert set(step.activated) == {pos for pos, _ in step.moves}
            assert set(step.activated) <= set(step.configuration)


def test_deadlock_witness_ends_quiescent(shibata_ssync_report):
    witness = shibata_ssync_report.witnesses.get("deadlock")
    if witness is None:
        pytest.skip("no deadlock class at this size")
    trace = run_execution(
        Configuration(witness.final), ShibataGatheringAlgorithm(), max_rounds=1
    )
    assert trace.outcome is Outcome.DEADLOCK


def test_disconnected_witness_final_is_disconnected(shibata_ssync_report):
    witness = shibata_ssync_report.witnesses.get("disconnected")
    if witness is None:
        pytest.skip("no disconnected class at this size")
    assert not Configuration(witness.final).is_connected()


def test_witness_minimality_deadlock(shibata_ssync_report):
    """No shorter schedule reaches the witnessed failure (BFS shortest path)."""
    report = shibata_ssync_report
    witness = report.witnesses["deadlock"]
    # Breadth-first distances from all roots to the nearest deadlock terminal.
    graph = report.graph
    distance = {root: 0 for root in graph.roots}
    frontier = list(graph.roots)
    best = None
    while frontier and best is None:
        next_frontier = []
        for vertex in frontier:
            if graph.terminal.get(vertex) == "deadlock":
                best = distance[vertex]
                break
            for _, destination in graph.successors(vertex):
                if destination >= 0 and destination not in distance:
                    distance[destination] = distance[vertex] + 1
                    next_frontier.append(destination)
        frontier = next_frontier
    assert witness.num_rounds == best


def test_livelock_witness_cycles():
    """An oscillating rule produces a livelock witness whose cycle replays."""

    def oscillate(view):
        # {(0,0),(1,0),(2,0)} <-> {(0,0),(1,0),(1,1)}: the east-end robot of
        # the line hops NW, then (seeing the L-shape) hops SE back.  Both
        # configurations stay connected and neither is gathered, so the
        # transition graph is a genuine 2-cycle.
        offsets = view.occupied_offsets
        if offsets == {(-1, 0), (-2, 0)}:
            return Direction.NW
        if offsets == {(-1, -1), (0, -1)}:
            return Direction.SE
        return None

    algo = FunctionAlgorithm(oscillate, visibility_range=2, name="oscillate")
    roots = [((0, 0), (1, 0), (2, 0))]
    graph = build_transition_graph(roots, algorithm=algo, mode="ssync")
    cls = classify(graph)
    assert cls.cyclic_nodes
    witnesses = find_witnesses(graph, cls, algorithm=algo)
    witness = witnesses["livelock"]
    assert witness.cycle_start is not None
    assert witness.num_rounds > witness.cycle_start
    replay_witness(witness, algo)
    # The final configuration is a translate of the cycle-start configuration.
    from repro.grid.packing import pack_nodes

    start_config = (
        witness.steps[witness.cycle_start].configuration
        if witness.cycle_start < len(witness.steps)
        else witness.final
    )
    assert pack_nodes(witness.final) == pack_nodes(start_config)


def test_replay_rejects_tampered_witness(shibata_ssync_report):
    witness = next(
        (w for w in shibata_ssync_report.witnesses.values() if w.steps), None
    )
    if witness is None:
        pytest.skip("no multi-round witness at this size")
    tampered_final = tuple((q + 1, r) for q, r in witness.final[:-1]) + (
        (99, 99),
    )
    tampered = type(witness)(
        kind=witness.kind,
        algorithm_name=witness.algorithm_name,
        mode=witness.mode,
        steps=witness.steps,
        final=tampered_final,
        cycle_start=witness.cycle_start,
        collision_kind=witness.collision_kind,
    )
    with pytest.raises(ValueError):
        replay_witness(tampered, ShibataGatheringAlgorithm())


def test_render_witness_output(shibata_ssync_report):
    for kind, witness in shibata_ssync_report.witnesses.items():
        text = render_witness(witness, unicode_symbols=False)
        assert f"outcome: {kind}" in text
        if witness.steps:
            assert "round 0" in text
        # ASCII mode stays ASCII.
        text.encode("ascii")
