"""The successor-table disk cache: the ``actions/cache`` warm-start path.

``save_tables``/``load_tables`` round-trip the exact arrays the shared-memory
publisher ships, keyed by the algorithm's cache fingerprint (name + package
version + rule-set digest) and size — so a warm CI job skips the build while
a release bump or a changed rule set silently rebuilds instead of adopting
stale arrays.
"""
from __future__ import annotations

import os

import pytest

np = pytest.importorskip("numpy")

from repro.algorithms import create_algorithm
from repro.core.decision_cache import cache_key
from repro.core.table_kernel import (
    load_tables,
    save_tables,
    successor_table,
    table_cache_file,
)
from repro.obs import metrics

ALGORITHM = "shibata-visibility2"
SIZE = 5


def _fresh_algorithm():
    return create_algorithm(ALGORITHM)


def _assert_tables_identical(left, right):
    assert np.array_equal(left.succ, right.succ)
    assert np.array_equal(left.codes, right.codes)
    assert np.array_equal(left.kind, right.kind)
    assert np.array_equal(left.mover_bits, right.mover_bits)
    assert np.array_equal(left.view.positions, right.view.positions)
    assert np.array_equal(left.view.views, right.view.views)
    assert left.view.visibility_range == right.view.visibility_range


def test_round_trip_is_byte_identical(tmp_path):
    cache_dir = str(tmp_path)
    built = successor_table(_fresh_algorithm(), SIZE, disk_cache=cache_dir)
    path = table_cache_file(cache_dir, _fresh_algorithm(), SIZE)
    assert os.path.exists(path)

    builds_before = metrics.counter("table.view_builds").value
    loaded_table = successor_table(_fresh_algorithm(), SIZE, disk_cache=cache_dir)
    assert metrics.counter("table.view_builds").value == builds_before  # no rebuild
    _assert_tables_identical(built, loaded_table)

    # the loaded table answers the whole-space verdict identically
    rows = np.arange(built.view.count)
    assert built.fsync_verdict(rows).root_census == loaded_table.fsync_verdict(rows).root_census


def test_cache_file_name_embeds_fingerprint_and_size(tmp_path):
    algorithm = _fresh_algorithm()
    path = table_cache_file(str(tmp_path), algorithm, SIZE)
    assert cache_key(algorithm) in os.path.basename(path)
    assert f"n{SIZE}" in os.path.basename(path)
    assert path.endswith(".npz")


def test_corrupt_file_falls_back_to_rebuild(tmp_path):
    cache_dir = str(tmp_path)
    reference = successor_table(_fresh_algorithm(), SIZE, disk_cache=cache_dir)
    path = table_cache_file(cache_dir, _fresh_algorithm(), SIZE)
    with open(path, "wb") as handle:
        handle.write(b"not an npz archive")
    misses_before = metrics.counter("table.disk_cache_misses").value
    rebuilt = successor_table(_fresh_algorithm(), SIZE, disk_cache=cache_dir)
    assert metrics.counter("table.disk_cache_misses").value == misses_before + 1
    _assert_tables_identical(reference, rebuilt)
    # the rebuild re-saved a valid file
    assert load_tables(_fresh_algorithm(), SIZE, cache_dir) is not None


def test_metadata_mismatch_is_rejected(tmp_path):
    cache_dir = str(tmp_path)
    successor_table(_fresh_algorithm(), SIZE, disk_cache=cache_dir)
    # wrong size under the right file name must not load
    right = table_cache_file(cache_dir, _fresh_algorithm(), SIZE)
    wrong = table_cache_file(cache_dir, _fresh_algorithm(), SIZE + 1)
    os.replace(right, wrong)
    assert load_tables(_fresh_algorithm(), SIZE + 1, cache_dir) is None


def test_save_tables_returns_written_paths(tmp_path):
    algorithm = _fresh_algorithm()
    successor_table(algorithm, 3)
    successor_table(algorithm, 4)
    written = save_tables(algorithm, str(tmp_path))
    assert len(written) == 2
    assert all(os.path.exists(path) for path in written)
    only_four = save_tables(algorithm, str(tmp_path), sizes=(4,))
    assert len(only_four) == 1
    assert only_four[0] == table_cache_file(str(tmp_path), algorithm, 4)


def test_environment_variable_enables_the_cache(tmp_path, monkeypatch):
    cache_dir = str(tmp_path)
    monkeypatch.setenv("REPRO_TABLE_CACHE", cache_dir)
    built = successor_table(_fresh_algorithm(), 4)
    assert os.path.exists(table_cache_file(cache_dir, _fresh_algorithm(), 4))
    hits_before = metrics.counter("table.disk_cache_hits").value
    loaded_table = successor_table(_fresh_algorithm(), 4)
    assert metrics.counter("table.disk_cache_hits").value == hits_before + 1
    _assert_tables_identical(built, loaded_table)
    # an explicit argument wins over the environment variable
    monkeypatch.setenv("REPRO_TABLE_CACHE", "/nonexistent/never-created")
    successor_table(_fresh_algorithm(), 4, disk_cache=cache_dir)
    assert not os.path.exists("/nonexistent")


def test_derived_algorithm_tables_cache_under_their_own_fingerprint(tmp_path):
    cache_dir = str(tmp_path)
    base = _fresh_algorithm()
    derived = create_algorithm("shibata-visibility2-synth2")
    assert cache_key(base) != cache_key(derived)
    base_table = successor_table(base, 4, disk_cache=cache_dir)
    derived_table = successor_table(derived, 4, disk_cache=cache_dir)
    assert os.path.exists(table_cache_file(cache_dir, base, 4))
    assert os.path.exists(table_cache_file(cache_dir, derived, 4))
    # loading each back preserves their distinct transition functions
    base_loaded = load_tables(create_algorithm(ALGORITHM), 4, cache_dir)
    derived_loaded = load_tables(create_algorithm("shibata-visibility2-synth2"), 4, cache_dir)
    assert base_loaded is not None and derived_loaded is not None
    assert np.array_equal(base_table.succ, base_loaded.succ)
    assert np.array_equal(derived_table.succ, derived_loaded.succ)
