"""The gathering service: protocol, caches, concurrency and shutdown.

The centerpiece is the byte-identity property: N concurrent ``/v1/verify``
clients — whose requests the service micro-batches through one vectorized
table gather — must receive responses *byte-identical* to what a serial
packed-kernel execution of the same roots would produce.  Responses are
serialized with sorted keys and pinned request ids precisely so this
comparison can be exact.

The SIGTERM test runs the real ``python -m repro serve`` subprocess with two
workers (tables published through shared memory) and asserts a clean exit
with zero leaked ``/dev/shm/repro_tbl_*`` segments; the session-scoped
``no_shared_memory_leak`` fixture backstops every other test here too.
"""
from __future__ import annotations

import asyncio
import glob
import json
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.configuration import Configuration
from repro.core.runner import execute_configuration, worker_algorithm
from repro.enumeration.polyhex import enumerate_connected_configurations
from repro.io.serialization import configuration_to_dict
from repro.serve import (
    GatheringService,
    LruCache,
    ProtocolError,
    ServeClient,
    ServeError,
    ServerThread,
    response_problems,
)
from repro.serve.http import _dump
from repro.serve.protocol import parse_census, parse_sweep, parse_verify

ALGORITHM = "shibata-visibility2"
SIZES = (2, 3, 4, 5)


@pytest.fixture(scope="module")
def service() -> GatheringService:
    return GatheringService(sizes=SIZES, batch_window=0.001)


@pytest.fixture(scope="module")
def server(service):
    """One live server for the whole module (tables built once)."""
    with ServerThread(service) as base_url:
        host, port = base_url.split("//")[1].rsplit(":", 1)
        yield host, int(port)


def _run(coroutine):
    return asyncio.run(coroutine)


def _roots(size: int, limit: int):
    return enumerate_connected_configurations(size)[:limit]


def _expected_verify_bytes(configuration, request_id, max_rounds=1000):
    """The serial reference: packed kernel, the CLI's per-root path."""
    result = execute_configuration(
        configuration,
        worker_algorithm(ALGORITHM),
        max_rounds=max_rounds,
        kernel="packed",
    )
    payload = {
        "initial": configuration_to_dict(Configuration(result.initial_nodes)),
        "outcome": result.outcome.value,
        "rounds": result.rounds,
        "total_moves": result.total_moves,
        "initial_diameter": result.initial_diameter,
        "collision_kind": result.collision_kind,
        "request_id": request_id,
        "algorithm": ALGORITHM,
        "scheduler": "fsync",
        "max_rounds": max_rounds,
    }
    return _dump(payload)


# ---------------------------------------------------------------------------
# Protocol unit tests
# ---------------------------------------------------------------------------

def test_parse_verify_rejects_malformed_requests():
    with pytest.raises(ProtocolError):
        parse_verify([1, 2, 3])
    with pytest.raises(ProtocolError, match="config"):
        parse_verify({"algorithm": ALGORITHM})
    with pytest.raises(ProtocolError, match="algorithm"):
        parse_verify({"config": [[0, 0]]})
    with pytest.raises(ProtocolError, match="max_rounds"):
        parse_verify({"config": [[0, 0]], "algorithm": ALGORITHM, "max_rounds": 0})
    with pytest.raises(ProtocolError, match="max_rounds"):
        parse_verify(
            {"config": [[0, 0]], "algorithm": ALGORITHM, "max_rounds": 10**7}
        )
    with pytest.raises(ProtocolError, match="pairs"):
        parse_verify({"config": [[0, 0, 0]], "algorithm": ALGORITHM})
    with pytest.raises(ProtocolError, match="scheduler"):
        parse_verify(
            {"config": [[0, 0]], "algorithm": ALGORITHM, "scheduler": "no-such"}
        )


def test_parse_verify_accepts_packed_and_cross_checks():
    nodes = [[0, 0], [1, 0], [0, 1]]
    packed = Configuration(tuple((q, r) for q, r in nodes))
    data = configuration_to_dict(packed)
    request = parse_verify(
        {"config": data["nodes"], "packed": data["packed"], "algorithm": ALGORITHM}
    )
    assert len(request.configuration.nodes) == 3
    with pytest.raises(ProtocolError):  # mismatched cross-check must fail
        parse_verify(
            {"config": [[5, 5]], "packed": data["packed"], "algorithm": ALGORITHM}
        )


def test_parse_sweep_and_census_bounds():
    request = parse_sweep(
        {"configs": [[[0, 0], [1, 0]], {"config": [[0, 0]]}], "algorithm": ALGORITHM}
    )
    assert len(request.configurations) == 2
    with pytest.raises(ProtocolError, match="configs"):
        parse_sweep({"configs": [], "algorithm": ALGORITHM})
    with pytest.raises(ProtocolError, match=r"configs\[1\]"):
        parse_sweep({"configs": [[[0, 0]], "nope"], "algorithm": ALGORITHM})
    assert parse_census({"algorithm": ALGORITHM}).size == 7
    with pytest.raises(ProtocolError, match="size"):
        parse_census({"algorithm": ALGORITHM, "size": 0})


def test_lru_cache_evicts_and_counts():
    cache = LruCache("unit-test", maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh 'a'
    cache.put("c", 3)  # evicts 'b', the least recently used
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3


# ---------------------------------------------------------------------------
# The byte-identity property under concurrency
# ---------------------------------------------------------------------------

def test_concurrent_verify_byte_identical_to_serial(server):
    """N concurrent clients == serial packed-kernel answers, byte for byte."""
    host, port = server
    cases = []
    for size in SIZES:
        for configuration in _roots(size, 12):
            request_id = f"prop-{len(cases):04d}"
            cases.append(
                (
                    request_id,
                    {"algorithm": ALGORITHM, "config": [list(n) for n in configuration.nodes]},
                    _expected_verify_bytes(configuration, request_id),
                )
            )

    async def one_client(slice_of_cases):
        received = []
        async with ServeClient(host, port) as client:
            for request_id, payload, _expected in slice_of_cases:
                status, body, headers = await client.request_bytes(
                    "POST", "/v1/verify", payload, {"X-Request-Id": request_id}
                )
                assert status == 200
                assert headers.get("x-request-id") == request_id
                received.append(body)
        return received

    async def main():
        clients = 8
        slices = [cases[i::clients] for i in range(clients)]
        return await asyncio.gather(*(one_client(s) for s in slices))

    all_bodies = _run(main())
    clients = 8
    slices = [cases[i::clients] for i in range(clients)]
    checked = 0
    for slice_of_cases, bodies in zip(slices, all_bodies):
        for (request_id, _payload, expected), body in zip(slice_of_cases, bodies):
            assert body == expected, f"response for {request_id} diverged"
            checked += 1
    assert checked == len(cases) and checked >= 30


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_verify_matches_packed_execution_property(service, data):
    """Any root, any budget: the batched service answer equals the packed run."""
    size = data.draw(st.sampled_from(SIZES))
    roots = enumerate_connected_configurations(size)
    configuration = roots[data.draw(st.integers(0, len(roots) - 1))]
    max_rounds = data.draw(st.sampled_from([1, 3, 50, 1000]))
    request = parse_verify(
        {
            "config": [list(n) for n in configuration.nodes],
            "algorithm": ALGORITHM,
            "max_rounds": max_rounds,
        }
    )

    async def main():
        service.startup()
        return await service.handle_verify(request, "prop")

    payload = _run(main())
    reference = execute_configuration(
        configuration, worker_algorithm(ALGORITHM), max_rounds=max_rounds, kernel="packed"
    )
    assert payload["outcome"] == reference.outcome.value
    assert payload["rounds"] == reference.rounds
    assert payload["total_moves"] == reference.total_moves
    assert payload["collision_kind"] == reference.collision_kind


def test_sweep_batches_and_matches_serial(server):
    host, port = server
    configurations = _roots(5, 40)
    payload = {
        "algorithm": ALGORITHM,
        "configs": [[list(n) for n in c.nodes] for c in configurations],
        "max_rounds": 600,
    }

    async def main():
        async with ServeClient(host, port) as client:
            return await client.post("/v1/sweep", payload)

    response = _run(main())
    assert response_problems("sweep", response) == []
    assert response["count"] == len(configurations)
    for configuration, result in zip(configurations, response["results"]):
        reference = execute_configuration(
            configuration, worker_algorithm(ALGORITHM), max_rounds=600, kernel="packed"
        )
        assert result["outcome"] == reference.outcome.value
        assert result["rounds"] == reference.rounds
    census = response["census"]
    assert sum(census.values()) == len(configurations)


# ---------------------------------------------------------------------------
# The other endpoints against the live server
# ---------------------------------------------------------------------------

def test_healthz_and_telemetry(server):
    host, port = server

    async def main():
        async with ServeClient(host, port) as client:
            health = await client.get("/healthz")
            telemetry = await client.get("/v1/telemetry")
            status, body, _ = await client.request_bytes(
                "GET", "/v1/telemetry?format=prometheus"
            )
            return health, telemetry, status, body

    health, telemetry, prom_status, prom_body = _run(main())
    assert response_problems("healthz", health) == []
    assert health["sizes"] == list(SIZES)
    assert telemetry["schema"] == "repro-telemetry/1"
    counters = telemetry["metrics"]["counters"]
    assert counters.get("serve.requests_total", 0) >= 1
    assert "serve.request.seconds" in telemetry["metrics"]["histograms"]
    assert prom_status == 200
    assert b"serve_requests_total" in prom_body


def test_census_cached_and_consistent(server, service):
    host, port = server

    async def main():
        async with ServeClient(host, port) as client:
            first = await client.get(f"/v1/census?algorithm={ALGORITHM}&size=5")
            second = await client.get(f"/v1/census?algorithm={ALGORITHM}&size=5")
            return first, second

    first, second = _run(main())
    assert response_problems("census", first) == []
    assert second["cached"] is True
    assert first["census"] == second["census"]
    assert first["fingerprint"] == service.fingerprint(ALGORITHM)
    # the census agrees with a direct whole-space verdict
    roots = enumerate_connected_configurations(5)
    assert first["roots"] == len(roots)
    assert sum(first["census"].values()) == len(roots)


def test_witness_replays_and_caches(server):
    host, port = server
    configuration = _roots(4, 8)[5]
    payload = {
        "algorithm": ALGORITHM,
        "config": [list(n) for n in configuration.nodes],
    }

    async def main():
        async with ServeClient(host, port) as client:
            first = await client.post("/v1/witness", payload)
            second = await client.post("/v1/witness", payload)
            return first, second

    first, second = _run(main())
    assert response_problems("witness", first) == []
    assert first["cached"] is False or first["cached"] is True  # schema-checked
    assert second["cached"] is True
    assert first["trace"] == second["trace"]
    rounds = first["trace"]["round_records"]
    assert first["trace"]["outcome"] == "gathered"
    # the records cover every round plus the settled final configuration
    assert len(rounds) == first["trace"]["rounds"] + 1
    assert rounds[-1]["moves"] == {}


def test_stream_plays_back_the_trace(server):
    host, port = server
    configuration = _roots(4, 8)[3]
    payload = {
        "algorithm": ALGORITHM,
        "config": [list(n) for n in configuration.nodes],
    }

    async def main():
        messages = []
        async with ServeClient(host, port) as client:
            async for message in client.stream(payload):
                messages.append(message)
            witness = await client.post("/v1/witness", payload)
        return messages, witness

    messages, witness = _run(main())
    assert messages[0]["type"] == "hello"
    assert messages[-1]["type"] == "done"
    rounds = [m for m in messages if m["type"] == "round"]
    assert len(rounds) == witness["trace"]["rounds"] + 1
    assert messages[-1]["outcome"] == witness["trace"]["outcome"]
    assert messages[-1]["final"] == witness["trace"]["final"]


def test_error_payloads(server):
    host, port = server

    async def main():
        async with ServeClient(host, port) as client:
            errors = {}
            for name, coroutine in (
                ("unknown_algorithm", client.post("/v1/verify", {"algorithm": "nope", "config": [[0, 0]]})),
                ("bad_config", client.post("/v1/verify", {"algorithm": ALGORITHM, "config": "x"})),
                ("not_found", client.get("/v1/nope")),
            ):
                try:
                    await coroutine
                except ServeError as exc:
                    errors[name] = exc
            status, _, _ = await client.request_bytes("GET", "/v1/stream")
            return errors, status

    errors, stream_status = _run(main())
    assert errors["unknown_algorithm"].status == 404
    assert errors["bad_config"].status == 400
    assert errors["bad_config"].payload["error"]["field"] == "config"
    assert errors["not_found"].status == 404
    assert stream_status == 400  # plain HTTP on the WebSocket endpoint


def test_scheduler_requests_bypass_the_batcher(server):
    host, port = server
    configuration = _roots(4, 6)[2]
    payload = {
        "algorithm": ALGORITHM,
        "config": [list(n) for n in configuration.nodes],
        "scheduler": "round-robin:2",
        "max_rounds": 500,
    }

    async def main():
        async with ServeClient(host, port) as client:
            return await client.post("/v1/verify", payload)

    response = _run(main())
    from repro.core.scheduler import scheduler_from_spec

    reference = execute_configuration(
        configuration,
        worker_algorithm(ALGORITHM),
        scheduler=scheduler_from_spec("round-robin:2"),
        max_rounds=500,
        kernel="packed",
    )
    assert response["scheduler"] == "round-robin:2"
    assert response["outcome"] == reference.outcome.value
    assert response["rounds"] == reference.rounds


def test_asgi_adapter_returns_the_same_bytes(server, service):
    """The ASGI app and the stdlib server share one router: same bytes out."""
    from repro.serve.asgi import create_app

    host, port = server
    app = create_app(service)
    configuration = _roots(4, 4)[1]
    body = json.dumps(
        {"algorithm": ALGORITHM, "config": [list(n) for n in configuration.nodes]}
    ).encode()

    async def main():
        sent = []
        events = [{"type": "http.request", "body": body, "more_body": False}]

        async def receive():
            return events.pop(0)

        async def send(message):
            sent.append(message)

        await app(
            {
                "type": "http",
                "method": "POST",
                "path": "/v1/verify",
                "query_string": b"",
                "headers": [(b"x-request-id", b"asgi-vs-http")],
            },
            receive,
            send,
        )
        async with ServeClient(host, port) as client:
            _, http_body, _ = await client.request_bytes(
                "POST",
                "/v1/verify",
                json.loads(body),
                {"X-Request-Id": "asgi-vs-http"},
            )
        return sent, http_body

    sent, http_body = _run(main())
    assert sent[0]["status"] == 200
    assert sent[1]["body"] == http_body


# ---------------------------------------------------------------------------
# Lifecycle: SIGTERM drain, worker publication, shm cleanliness
# ---------------------------------------------------------------------------

def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def test_sigterm_drains_and_unlinks_shared_memory(tmp_path):
    """``python -m repro serve --workers 2`` exits 0 on SIGTERM, shm clean."""
    before = set(glob.glob("/dev/shm/repro_tbl_*"))
    port = _free_port()
    import os

    import repro

    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            str(port),
            "--workers",
            "2",
            "--sizes",
            "2-4",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        deadline = time.time() + 90
        health = None
        while time.time() < deadline:
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=1
                ) as response:
                    health = json.loads(response.read())
                    break
            except (OSError, ValueError):
                if proc.poll() is not None:
                    break
                time.sleep(0.25)
        assert health is not None, (proc.poll(), proc.stderr.read() if proc.poll() is not None else "no healthz")
        assert response_problems("healthz", health) == []
        # tables are published for the worker while the service runs
        assert set(glob.glob("/dev/shm/repro_tbl_*")) - before
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/verify",
            data=json.dumps(
                {"algorithm": ALGORITHM, "config": [[0, 0], [1, 0], [2, 0]]}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            verdict = json.loads(response.read())
        assert verdict["outcome"] == "gathered"
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)
    assert proc.returncode == 0, stderr[-2000:]
    assert "serving on http://127.0.0.1:" in stdout
    leaked = sorted(set(glob.glob("/dev/shm/repro_tbl_*")) - before)
    assert not leaked, f"SIGTERM left segments behind: {leaked}"


def test_server_thread_shutdown_is_leak_free():
    before = set(glob.glob("/dev/shm/repro_tbl_*"))
    local = GatheringService(sizes=(2, 3), publish=True)
    with ServerThread(local) as base_url:
        host, port = base_url.split("//")[1].rsplit(":", 1)

        async def main():
            async with ServeClient(host, int(port)) as client:
                return await client.get("/healthz")

        assert _run(main())["status"] == "ok"
        assert set(glob.glob("/dev/shm/repro_tbl_*")) - before
    leaked = sorted(set(glob.glob("/dev/shm/repro_tbl_*")) - before)
    assert not leaked
