"""Tests for repro.grid.coords."""
import pytest

from repro.grid.coords import (
    ORIGIN,
    Coord,
    as_coord,
    bounding_box,
    centroid_shift,
    disk,
    distance,
    iter_path,
    neighbor,
    neighbors,
    ring,
    translate,
)
from repro.grid.directions import DIRECTIONS, Direction


def test_coord_is_tuple_like():
    c = Coord(2, -1)
    assert c == (2, -1)
    assert c.q == 2 and c.r == -1
    assert hash(c) == hash((2, -1))


def test_coord_arithmetic():
    assert Coord(1, 2) + Coord(3, -1) == Coord(4, 1)
    assert Coord(1, 2) - (3, -1) == Coord(-2, 3)
    assert -Coord(1, 2) == Coord(-1, -2)


def test_step_matches_direction_vectors():
    for d in DIRECTIONS:
        assert ORIGIN.step(d) == Coord(*d.value)


def test_neighbors_are_at_distance_one():
    for nb in neighbors((3, -2)):
        assert distance((3, -2), nb) == 1
    assert len(neighbors((3, -2))) == 6
    assert len(set(neighbors((3, -2)))) == 6


def test_distance_is_a_metric_on_samples():
    samples = [Coord(0, 0), Coord(2, -1), Coord(-3, 2), Coord(1, 1), Coord(4, -4)]
    for a in samples:
        assert distance(a, a) == 0
        for b in samples:
            assert distance(a, b) == distance(b, a)
            for c in samples:
                assert distance(a, c) <= distance(a, b) + distance(b, c)


def test_distance_examples():
    assert distance((0, 0), (1, 0)) == 1
    assert distance((0, 0), (1, 1)) == 2
    assert distance((0, 0), (-1, 1)) == 1
    assert distance((0, 0), (2, -1)) == 2
    assert distance((0, 0), (0, 3)) == 3


def test_ring_sizes():
    assert ring((0, 0), 0) == [Coord(0, 0)]
    assert len(ring((0, 0), 1)) == 6
    assert len(ring((0, 0), 2)) == 12
    assert len(ring((5, -3), 3)) == 18


def test_ring_distance_invariant():
    for radius in range(1, 4):
        for node in ring((1, 1), radius):
            assert distance((1, 1), node) == radius


def test_ring_negative_radius():
    with pytest.raises(ValueError):
        ring((0, 0), -1)


def test_disk_sizes():
    # 1 + 6 + 12 + ... = 1 + 3k(k+1)
    for radius in range(4):
        assert len(disk((0, 0), radius)) == 1 + 3 * radius * (radius + 1)


def test_disk_contains_all_closer_nodes():
    d2 = set(disk((0, 0), 2))
    assert Coord(0, 0) in d2
    assert Coord(2, 0) in d2
    assert Coord(1, 1) in d2
    assert Coord(3, 0) not in d2


def test_translate():
    assert translate([(0, 0), (1, 1)], (2, -1)) == [Coord(2, -1), Coord(3, 0)]


def test_bounding_box():
    assert bounding_box([(0, 0), (2, -3), (-1, 4)]) == (-1, -3, 2, 4)
    with pytest.raises(ValueError):
        bounding_box([])


def test_centroid_shift_moves_min_to_origin():
    nodes = [(3, 2), (4, 2), (3, 3)]
    shift = centroid_shift(nodes)
    shifted = translate(nodes, shift)
    assert min(shifted) == Coord(0, 0)


def test_iter_path():
    path = list(iter_path((0, 0), [Direction.E, Direction.NE]))
    assert path == [Coord(0, 0), Coord(1, 0), Coord(1, 1)]


def test_as_coord_accepts_tuples():
    assert as_coord((2, 3)) == Coord(2, 3)
    assert as_coord(Coord(2, 3)) == Coord(2, 3)
