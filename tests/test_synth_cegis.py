"""End-to-end tests of the CEGIS loop: deleted-guard recovery, checkpointing
and the committed ``shibata-visibility2-synth`` rule set."""
import json

import pytest

from repro.algorithms import create_algorithm
from repro.analysis.synth_progress import THEOREM2_TARGET, synth_progress
from repro.explore import explore
from repro.grid.packing import unpack_nodes
from repro.io.serialization import (
    load_synthesis_checkpoint,
    synthesis_to_dict,
)
from repro.synth import (
    learned_ruleset,
    load_ruleset,
    overrides_to_ruleset,
    result_algorithm,
    ruleset_to_overrides,
    save_ruleset,
    synthesize,
)
from repro.grid.directions import Direction

#: The deleted-guard base of the recovery example: Algorithm 1 with the
#: printed anti-standstill rule R3c removed.
ABLATED = "shibata-visibility2[minus-R3c]"


@pytest.fixture(scope="module")
def recovery_roots():
    """Roots the full algorithm gathers but the ablated variant deadlocks."""
    full = explore(algorithm_name="shibata-visibility2", mode="fsync", with_witnesses=False)
    ok_full = {
        packed
        for packed in full.graph.roots
        if full.classification.node_class[packed] in ("gathered", "safe")
    }
    ablated = explore(algorithm_name=ABLATED, mode="fsync", with_witnesses=False)
    affected = [
        packed
        for packed in ablated.graph.roots
        if ablated.classification.node_class[packed] not in ("gathered", "safe")
        and packed in ok_full
    ]
    assert len(affected) > 100  # deleting R3c opens a real gap
    return [unpack_nodes(packed) for packed in affected[:60]]


@pytest.fixture(scope="module")
def recovery_result(recovery_roots):
    return synthesize(
        base_name=ABLATED,
        roots=recovery_roots,
        max_iterations=4,
        chain_budget=300,
        max_depth=20,
        branch=4,
    )


def test_recovers_deleted_guard(recovery_result, recovery_roots):
    """The CEGIS loop repairs every root the deleted guard broke."""
    result = recovery_result
    assert result.base_ok == 0  # every restricted root deadlocks at first
    assert result.improved
    assert result.final_ok == len(recovery_roots)
    assert set(result.final_census) <= {"gathered", "safe"}
    assert len(result.ruleset) > 0
    # Validation: exhaustively collision- and livelock-free under SSYNC too.
    assert result.validated is True
    assert result.ssync_census is not None
    assert result.ssync_census.get("collision", 0) == 0
    assert result.ssync_census.get("livelock", 0) == 0


def test_recovery_composes_and_replays(recovery_result, recovery_roots):
    algorithm = result_algorithm(recovery_result)
    report = explore(algorithm=algorithm, roots=recovery_roots, with_witnesses=False)
    assert set(report.root_census) <= {"gathered", "safe"}


def test_synthesis_summary_and_serialization(recovery_result):
    payload = synthesis_to_dict(recovery_result)
    assert payload["improved"] is True
    assert payload["rules"] == len(recovery_result.ruleset)
    assert payload["iteration_history"]
    text = json.dumps(payload)  # JSON-safe end to end
    assert "ruleset" in json.loads(text)


def test_synth_progress_reconciliation(recovery_result, recovery_roots):
    progress = synth_progress(recovery_result)
    assert progress["target"] == len(recovery_roots)
    assert progress["base_ok"] == 0
    assert progress["final_ok"] == len(recovery_roots)
    assert progress["rescued"] == len(recovery_roots)
    assert progress["remaining_gap"] == 0
    assert progress["theorem2_reached"] is True
    assert progress["ssync_safe"] is True


def test_checkpoint_round_trip_and_resume(tmp_path, recovery_roots):
    checkpoint = tmp_path / "synth.ckpt.json"
    first = synthesize(
        base_name=ABLATED,
        roots=recovery_roots,
        max_iterations=2,
        chain_budget=300,
        max_depth=20,
        branch=4,
        ssync_validate=False,
        checkpoint_path=checkpoint,
    )
    assert checkpoint.exists()
    state = load_synthesis_checkpoint(checkpoint)
    assert state["base"] == ABLATED
    assert len(state["assigned"]) == len(first.ruleset)
    assert state["iterations"]

    # Resuming with a zero-iteration budget reproduces the committed rule set
    # without redoing the search.
    resumed = synthesize(
        base_name=ABLATED,
        roots=recovery_roots,
        max_iterations=0,
        ssync_validate=False,
        checkpoint_path=checkpoint,
        resume=True,
    )
    assert resumed.ruleset.rules == first.ruleset.rules
    assert resumed.final_ok == first.final_ok


def test_checkpoint_base_mismatch_rejected(tmp_path, recovery_roots):
    checkpoint = tmp_path / "synth.ckpt.json"
    synthesize(
        base_name=ABLATED,
        roots=recovery_roots[:5],
        max_iterations=1,
        ssync_validate=False,
        checkpoint_path=checkpoint,
    )
    with pytest.raises(ValueError):
        synthesize(
            base_name="shibata-visibility2",
            roots=recovery_roots[:5],
            max_iterations=1,
            checkpoint_path=checkpoint,
            resume=True,
        )


def test_ruleset_save_load_round_trip(tmp_path, recovery_result):
    path = tmp_path / "rules.json"
    save_ruleset(recovery_result.ruleset, path)
    rebuilt = load_ruleset(path)
    assert rebuilt == recovery_result.ruleset
    assert ruleset_to_overrides(rebuilt) == ruleset_to_overrides(recovery_result.ruleset)


def test_overrides_ruleset_inverse():
    overrides = {33: Direction.E, 129: Direction.SW}
    ruleset = overrides_to_ruleset(overrides, "t")
    assert ruleset_to_overrides(ruleset) == overrides


# ---------------------------------------------------------------------------
# The committed learned rule set (the registered algorithm).
# ---------------------------------------------------------------------------

def test_learned_ruleset_loads():
    ruleset = learned_ruleset()
    assert len(ruleset) > 0
    for rule in ruleset.rules:
        assert rule.atoms[0][0] == "view_eq"


def test_registered_synth_algorithm_beats_the_base():
    """The PR 3 acceptance criterion: strictly more than 1895/3652 gathered,
    0 collision / 0 livelock under adversarial SSYNC exploration."""
    from repro.analysis.census_pins import pinned_census

    algorithm = create_algorithm("shibata-visibility2-synth")
    assert algorithm.name == "shibata-visibility2-synth"

    fsync = explore(algorithm=algorithm, mode="fsync", with_witnesses=False)
    census = fsync.root_census
    ok = census.get("gathered", 0) + census.get("safe", 0)
    assert sum(census.values()) == THEOREM2_TARGET
    assert ok > 1895
    # The census recorded in ROADMAP.md and repro.analysis.census_pins.
    assert census == pinned_census("shibata-visibility2-synth", "fsync")

    ssync = explore(algorithm=algorithm, mode="ssync", with_witnesses=False)
    assert ssync.root_census.get("collision", 0) == 0
    assert ssync.root_census.get("livelock", 0) == 0
    assert ssync.root_census == pinned_census("shibata-visibility2-synth", "ssync")


def test_registered_synth2_algorithm_reaches_theorem2():
    """The move-amending repair closes Theorem 2 exactly: every one of the
    3652 connected roots gathers — under FSYNC and under every adversarial
    activation schedule — and the won-root regression gate holds: synth2
    wins a strict superset of the roots synth wins."""
    from repro.analysis.census_pins import pinned_census

    algorithm = create_algorithm("shibata-visibility2-synth2")
    assert algorithm.name == "shibata-visibility2-synth2"

    fsync = explore(algorithm=algorithm, mode="fsync", with_witnesses=False)
    assert fsync.root_census == pinned_census("shibata-visibility2-synth2", "fsync")
    assert fsync.root_census == {"gathered": 1, "safe": 3651}  # Theorem 2, exactly
    assert fsync.all_roots_gather

    ssync = explore(algorithm=algorithm, mode="ssync", with_witnesses=False)
    assert ssync.root_census == pinned_census("shibata-visibility2-synth2", "ssync")
    assert ssync.all_roots_gather  # stronger than the paper: SSYNC-robust too

    # The regression gate, pinned: no root won by the additive repair is lost.
    synth_fsync = explore(
        algorithm=create_algorithm("shibata-visibility2-synth"),
        mode="fsync",
        with_witnesses=False,
    )
    won_synth = {
        packed
        for packed in synth_fsync.graph.roots
        if synth_fsync.classification.node_class[packed] in ("gathered", "safe")
    }
    won_synth2 = {
        packed
        for packed in fsync.graph.roots
        if fsync.classification.node_class[packed] in ("gathered", "safe")
    }
    assert won_synth < won_synth2
    assert len(won_synth2) == THEOREM2_TARGET


def test_learned_amend_ruleset_layers():
    """The committed amending artefact mixes both rule modes."""
    from repro.synth import learned_amend_ruleset

    ruleset = learned_amend_ruleset()
    assert ruleset.has_overrides
    assert len(ruleset.override_rules) > 0
    assert len(ruleset.extend_rules) > 0
    assert len(ruleset) == len(ruleset.override_rules) + len(ruleset.extend_rules)
    # Forced stays are part of the repair space and present in the artefact.
    assert any(rule.direction is None for rule in ruleset.override_rules)


def test_synth2_progress_reports_theorem2_reached():
    from repro.analysis.census_pins import pinned_census

    progress = synth_progress(
        {
            "base": "shibata-visibility2",
            "base_census": pinned_census("shibata-visibility2", "fsync"),
            "census": pinned_census("shibata-visibility2-synth2", "fsync"),
            "ssync_census": pinned_census("shibata-visibility2-synth2", "ssync"),
            "rules": 61,
            "override_rules": 26,
            "validated": True,
        }
    )
    assert progress["theorem2_reached"] is True
    assert progress["remaining_gap"] == 0
    assert progress["ssync_safe"] is True
    assert progress["override_rules"] == 26


def test_resume_with_missing_checkpoint_raises(tmp_path, recovery_roots):
    with pytest.raises(FileNotFoundError):
        synthesize(
            base_name=ABLATED,
            roots=recovery_roots[:5],
            max_iterations=1,
            checkpoint_path=tmp_path / "never-written.json",
            resume=True,
        )


def test_synthesize_shares_the_decision_cache(tmp_path, recovery_roots):
    from repro.core.decision_cache import cache_file

    result = synthesize(
        base_name=ABLATED,
        roots=recovery_roots[:10],
        max_iterations=1,
        ssync_validate=False,
        cache_dir=str(tmp_path),
    )
    assert result.explores >= 1
    assert cache_file(tmp_path, create_algorithm(ABLATED)).exists()
