"""Property-based tests (hypothesis) for the core data structures and invariants."""
from hypothesis import given, settings, strategies as st

from repro.algorithms.visibility2 import ShibataGatheringAlgorithm
from repro.core.configuration import Configuration
from repro.core.engine import apply_moves, compute_moves, detect_collision, run_execution
from repro.core.trace import Outcome
from repro.grid.coords import Coord, distance, neighbors, ring
from repro.grid.directions import DIRECTIONS
from repro.grid.labels import label_of_offset, offset_of_label
from repro.grid.symmetry import canonical_translation, reflect_x, rotate

coords = st.tuples(st.integers(-30, 30), st.integers(-30, 30))


# --------------------------------------------------------------------- grid
@given(coords, coords)
def test_distance_symmetry(a, b):
    assert distance(a, b) == distance(b, a)


@given(coords, coords, coords)
def test_distance_triangle_inequality(a, b, c):
    assert distance(a, c) <= distance(a, b) + distance(b, c)


@given(coords)
def test_neighbors_at_distance_one(node):
    for nb in neighbors(node):
        assert distance(node, nb) == 1


@given(coords, st.integers(1, 4))
def test_ring_nodes_at_exact_distance(center, radius):
    nodes = ring(center, radius)
    assert len(nodes) == 6 * radius
    assert all(distance(center, n) == radius for n in nodes)


@given(coords)
def test_label_offset_roundtrip(node):
    assert offset_of_label(label_of_offset(node)) == Coord(*node)


@given(coords, st.integers(0, 5))
def test_rotation_preserves_distance_to_origin(node, steps):
    assert distance((0, 0), rotate(node, steps)) == distance((0, 0), node)


@given(coords)
def test_reflection_is_involutive(node):
    assert reflect_x(reflect_x(node)) == Coord(*node)


# --------------------------------------------------- configurations (grown)
def connected_configurations(min_size=2, max_size=7):
    """Strategy: grow a random connected configuration node by node."""

    @st.composite
    def build(draw):
        size = draw(st.integers(min_size, max_size))
        nodes = [Coord(0, 0)]
        while len(nodes) < size:
            anchor = nodes[draw(st.integers(0, len(nodes) - 1))]
            candidates = [nb for nb in neighbors(anchor) if nb not in nodes]
            if not candidates:
                continue
            nodes.append(candidates[draw(st.integers(0, len(candidates) - 1))])
        return Configuration(nodes)

    return build()


@given(connected_configurations(), coords)
def test_canonical_key_translation_invariance(config, offset):
    translated = config.translated(offset)
    assert config.canonical_key() == translated.canonical_key()
    assert canonical_translation(config.nodes) == canonical_translation(translated.nodes)


@given(connected_configurations())
def test_grown_configurations_are_connected(config):
    assert config.is_connected()


@given(connected_configurations(min_size=7, max_size=7))
@settings(max_examples=40, deadline=None)
def test_algorithm_never_collides_or_cycles(config):
    """Safety invariant of the transcribed algorithm on random connected inputs.

    The printed pseudocode is incomplete, so gathering is not guaranteed on
    every input -- but the executions it produces must never collide and
    never livelock (every observed failure is a clean deadlock or a
    disconnection, see EXPERIMENTS.md).
    """
    trace = run_execution(config, ShibataGatheringAlgorithm(), max_rounds=300, record_rounds=False)
    assert trace.outcome is not Outcome.COLLISION
    assert trace.outcome is not Outcome.LIVELOCK
    assert trace.outcome is not Outcome.ROUND_LIMIT


@given(connected_configurations(min_size=7, max_size=7))
@settings(max_examples=40, deadline=None)
def test_single_round_preserves_robot_count(config):
    algorithm = ShibataGatheringAlgorithm()
    moves = compute_moves(config, algorithm)
    if detect_collision(config, moves) is None:
        after = apply_moves(config, moves)
        assert len(after) == len(config)
