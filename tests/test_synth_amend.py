"""Tests for the amending repair space: override rules, composition
semantics, the amend-capable chain search and the won-root regression gate."""
import json

import pytest

from repro.algorithms import create_algorithm
from repro.algorithms.composed import ComposedAlgorithm
from repro.core.view import View, view_of
from repro.enumeration.polyhex import enumerate_connected_configurations
from repro.explore import explore
from repro.grid.directions import Direction
from repro.grid.packing import pack_nodes, unpack_nodes, view_bitmask
from repro.io.serialization import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointSchemaError,
    load_synthesis_checkpoint,
    save_synthesis_checkpoint,
)
from repro.synth import (
    GuardRule,
    OverrideAlgorithm,
    RuleSet,
    amend_candidates,
    learned_ruleset,
    overrides_to_ruleset,
    repair_chain,
    ruleset_algorithm,
    ruleset_layers,
    ruleset_to_overrides,
    simulate_outcome,
    simulate_to_quiescence,
    split_decisions,
    synthesize,
    transform_view,
)


def make_view(*offsets):
    return View(offsets, visibility_range=2)


# ---------------------------------------------------------------------------
# DSL: override mode and forced stays.
# ---------------------------------------------------------------------------

def test_override_rule_modes_and_validation():
    rule = GuardRule("o", (("view_eq", 33),), Direction.E, mode="override")
    assert rule.is_override
    assert not GuardRule("e", (("view_eq", 33),), Direction.E).is_override
    with pytest.raises(ValueError):
        GuardRule("bad-mode", (("view_eq", 33),), Direction.E, mode="replace")


def test_forced_stay_requires_override_mode():
    GuardRule("ok", (("view_eq", 33),), None, mode="override")
    with pytest.raises(ValueError):
        GuardRule("bad", (("view_eq", 33),), None)  # extend + stay is a no-op


def test_forced_stay_rejects_directional_atoms():
    with pytest.raises(ValueError):
        GuardRule("bad", (("conn_safe",),), None, mode="override")
    with pytest.raises(ValueError):
        GuardRule("bad", (("toward_centroid",),), None, mode="override")


def test_override_rule_serialization_round_trip():
    ruleset = RuleSet(
        "amend",
        (
            GuardRule("stay", (("view_eq", 33),), None, mode="override"),
            GuardRule("redir", (("view_eq", 65),), Direction.SW, mode="override"),
            GuardRule("add", (("view_eq", 129),), Direction.NE),
        ),
    )
    rebuilt = RuleSet.from_dict(json.loads(json.dumps(ruleset.to_dict())))
    assert rebuilt == ruleset
    assert rebuilt.has_overrides
    assert len(rebuilt.override_rules) == 2
    assert len(rebuilt.extend_rules) == 1


def test_from_dict_defaults_to_extend_mode():
    """Rule dicts written by the pre-override DSL load as extension rules."""
    legacy = {
        "rule_id": "synth:view:0x21->E",
        "atoms": [["view_eq", 33]],
        "direction": "E",
        "visibility_range": 2,
    }
    rule = GuardRule.from_dict(legacy)
    assert rule.mode == "extend"
    assert not rule.is_override


@pytest.mark.parametrize("direction", [None, Direction.SW])
def test_override_rules_are_d6_equivariant(direction):
    rule = GuardRule(
        "o", (("view_eq", make_view((1, 0), (0, 1)).bitmask()),), direction, mode="override"
    )
    views = []
    for config in enumerate_connected_configurations(5)[::11]:
        for pos in config.sorted_nodes():
            views.append(view_of(config, pos, 2))
    assert views
    for rotation in range(6):
        for reflect in (False, True):
            moved = rule.transformed(rotation, reflect)
            assert moved.mode == "override"
            for view in views:
                assert rule.matches(view) == moved.matches(
                    transform_view(view, rotation, reflect)
                )
    # Forced stays are fixed points of the group action on directions.
    if direction is None:
        assert rule.transformed(3, True).direction is None


# ---------------------------------------------------------------------------
# RuleSet layered protocol.
# ---------------------------------------------------------------------------

def test_decide_override_distinguishes_stay_from_no_match():
    view = make_view((1, 0))
    bitmask = view.bitmask()
    ruleset = RuleSet(
        "t", (GuardRule("stay", (("view_eq", bitmask),), None, mode="override"),)
    )
    matched, rule_id, move = ruleset.decide_override(view)
    assert matched and rule_id == "stay" and move is None
    other = make_view((0, 1))
    assert ruleset.decide_override(other) == (False, None, None)


def test_compute_extend_skips_override_rules():
    view = make_view((1, 0))
    bitmask = view.bitmask()
    ruleset = RuleSet(
        "t",
        (
            GuardRule("ovr", (("view_eq", bitmask),), Direction.W, mode="override"),
            GuardRule("ext", (("view_eq", bitmask),), Direction.E),
        ),
    )
    assert ruleset.compute_extend(view) == Direction.E
    assert ruleset.decide_override(view) == (True, "ovr", Direction.W)


# ---------------------------------------------------------------------------
# Composition semantics (the amending property tests).
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def base():
    return create_algorithm("shibata-visibility2")


@pytest.fixture(scope="module")
def sample_views(base):
    views = []
    for config in enumerate_connected_configurations(7)[::13]:
        for pos in config.sorted_nodes():
            views.append(view_of(config, pos, 2))
    return views


def test_override_wins_exactly_when_matched(base, sample_views):
    """The pinned amending contract: on every view, a matching override rule's
    move replaces the base decision, and a non-matching one changes nothing."""
    # Pick views where the base moves, and views where it stays.
    moving = next(v for v in sample_views if base.compute(v) is not None)
    staying = next(v for v in sample_views if base.compute(v) is None)
    ruleset = RuleSet(
        "t",
        (
            GuardRule("stay", (("view_eq", moving.bitmask()),), None, mode="override"),
            GuardRule(
                "ovr", (("view_eq", staying.bitmask()),), Direction.E, mode="override"
            ),
        ),
    )
    composed = ComposedAlgorithm(base, ruleset)
    for view in sample_views:
        matched, _, move = ruleset.decide_override(view)
        if matched:
            assert composed.compute(view) == move
        else:
            assert composed.compute(view) == base.compute(view)


def test_base_behaviour_byte_identical_without_override_match(base, sample_views):
    """A rule set whose override rules never match leaves every decision —
    and therefore every execution — byte-identical to the additive layer."""
    extends = learned_ruleset()
    never_matching = GuardRule(
        "never", (("view_eq", 0), ("robots_eq", 99)), None, mode="override"
    )
    with_dead_override = RuleSet("t", (never_matching,) + extends.rules)
    assert with_dead_override.has_overrides
    additive = ComposedAlgorithm(base, extends)
    amending = ComposedAlgorithm(base, with_dead_override)
    for view in sample_views:
        assert amending.compute(view) == additive.compute(view)
        assert amending.explain(view) == additive.explain(view)


def test_override_algorithm_matches_composed_ruleset(base, sample_views):
    """The raw search-time composition and the declarative rule set agree."""
    staying = [v for v in sample_views if base.compute(v) is None]
    moving = [v for v in sample_views if base.compute(v) is not None]
    overrides = {staying[0].bitmask(): Direction.E}
    amendments = {moving[0].bitmask(): None, moving[1].bitmask(): Direction.NW}
    raw = OverrideAlgorithm(base, overrides, amendments=amendments)
    declarative = ruleset_algorithm(
        base, overrides_to_ruleset(overrides, "t", amendments=amendments)
    )
    for view in sample_views:
        assert raw.compute(view) == declarative.compute(view)


def test_ruleset_layers_inverse():
    overrides = {33: Direction.E}
    amendments = {65: None, 129: Direction.SW}
    ruleset = overrides_to_ruleset(overrides, "t", amendments=amendments)
    assert ruleset_layers(ruleset) == (overrides, amendments)
    with pytest.raises(ValueError):
        ruleset_to_overrides(ruleset)  # mixed sets need ruleset_layers


def test_override_algorithm_fingerprint_distinguishes_amendments(base):
    plain = OverrideAlgorithm(base, {33: Direction.E})
    amended = OverrideAlgorithm(base, {33: Direction.E}, amendments={65: None})
    assert plain.cache_fingerprint != amended.cache_fingerprint


# ---------------------------------------------------------------------------
# Amend-capable search.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def synth_algorithm():
    return create_algorithm("shibata-visibility2-synth")


@pytest.fixture(scope="module")
def disconnect_roots(synth_algorithm):
    """Roots whose FSYNC run under the additive repair still disconnects."""
    report = explore(algorithm=synth_algorithm, mode="fsync", with_witnesses=False)
    roots = [
        packed
        for packed in report.graph.roots
        if report.classification.node_class[packed] == "disconnected"
    ]
    assert len(roots) == 318  # the pinned residual class of PR 3
    return roots


def test_simulate_outcome_reports_pre_failure_vertex(synth_algorithm, disconnect_roots):
    status, settled, pre_failure = simulate_outcome(disconnect_roots[0], synth_algorithm)
    assert status == "disconnected"
    assert pre_failure != settled
    # The pre-failure vertex is connected (it is a real graph vertex) and one
    # FSYNC round ahead of it lies the disconnected state.
    legacy_status, legacy_settled = simulate_to_quiescence(
        disconnect_roots[0], synth_algorithm
    )
    assert (legacy_status, legacy_settled) == (status, settled)


def test_amend_candidates_rank_forced_stays_first(synth_algorithm, disconnect_roots):
    from repro.core.engine import move_intents

    _, _, pre_failure = simulate_outcome(disconnect_roots[0], synth_algorithm)
    positions = unpack_nodes(pre_failure)
    intents = move_intents(positions, synth_algorithm)
    assert intents  # the failure happens mid-move
    options = amend_candidates(positions, intents, visibility_range=2)
    assert options
    stays = [i for i, (_, d) in enumerate(options) if d is None]
    moves = [i for i, (_, d) in enumerate(options) if d is not None]
    assert stays and moves
    assert max(stays) < min(moves)  # every stay ranks before every redirect
    # No candidate re-proposes a mover's current printed move.
    mover_views = {
        view_bitmask(positions, pos, 2): direction for pos, direction in intents.items()
    }
    for bitmask, direction in options:
        if direction is not None and bitmask in mover_views:
            assert direction != mover_views[bitmask]


def test_amend_candidates_respect_blocked_stays(synth_algorithm, disconnect_roots):
    from repro.core.engine import move_intents

    _, _, pre_failure = simulate_outcome(disconnect_roots[0], synth_algorithm)
    positions = unpack_nodes(pre_failure)
    intents = move_intents(positions, synth_algorithm)
    baseline = amend_candidates(positions, intents, visibility_range=2)
    blocked = {(bm, "STAY") for bm, d in baseline if d is None}
    filtered = amend_candidates(positions, intents, blocked, visibility_range=2)
    assert all(d is not None for _, d in filtered)


def test_repair_chain_amends_a_disconnect_root(base, disconnect_roots):
    from repro.synth.ruleset import ruleset_layers as layers

    assigned, _ = layers(learned_ruleset())
    packed = disconnect_roots[0]
    without_amend, _ = repair_chain(packed, base, assigned, allow_amend=False)
    assert without_amend is None  # additive space provably cannot reach it
    chain, expansions = repair_chain(packed, base, assigned, allow_amend=True)
    assert chain, "the amending chain search should find a repair"
    assert expansions >= 1
    status, _ = simulate_to_quiescence(
        packed, OverrideAlgorithm(base, assigned, amendments=chain)
    )
    assert status == "gathered"


def test_split_decisions_classifies_layers(base):
    staying_view = None
    moving_view = None
    for config in enumerate_connected_configurations(7)[::17]:
        for pos in config.sorted_nodes():
            view = view_of(config, pos, 2)
            if base.compute(view) is None and staying_view is None:
                staying_view = view
            if base.compute(view) is not None and moving_view is None:
                moving_view = view
        if staying_view is not None and moving_view is not None:
            break
    pending = {
        staying_view.bitmask(): Direction.E,  # base stays: additive
        moving_view.bitmask(): Direction.NW,  # base moves: amendment
        1 << 60: None,  # forced stay: always an amendment
    }
    additive, amendments = split_decisions(pending, base)
    assert additive == {staying_view.bitmask(): Direction.E}
    assert amendments == {moving_view.bitmask(): Direction.NW, 1 << 60: None}
    # A view already holding a committed additive rule re-classifies as an
    # amendment (the override layer shadows the old rule).
    additive2, amendments2 = split_decisions(
        pending, base, assigned={staying_view.bitmask(): Direction.W}
    )
    assert additive2 == {}
    assert staying_view.bitmask() in amendments2


# ---------------------------------------------------------------------------
# The won-root regression gate, end to end on a small universe.
# ---------------------------------------------------------------------------

def test_amending_synthesis_preserves_won_roots(disconnect_roots):
    """The acceptance property at test scale: seeded amending synthesis on a
    mixed slice strictly improves and loses nothing it started with."""
    synth = create_algorithm("shibata-visibility2-synth")
    report = explore(algorithm=synth, mode="fsync", with_witnesses=False)
    ok = [
        packed
        for packed in report.graph.roots
        if report.classification.node_class[packed] in ("gathered", "safe")
    ]
    roots = [unpack_nodes(p) for p in ok[:150] + disconnect_roots[:10]]
    result = synthesize(
        base_name="shibata-visibility2",
        roots=roots,
        max_iterations=6,
        allow_amend=True,
        seed_ruleset=learned_ruleset(),
    )
    assert result.improved
    assert result.override_rules > 0
    # Nothing previously won is lost: the composed algorithm still wins every
    # root the seed composition won on this universe.
    overrides, amendments = ruleset_layers(result.ruleset)
    composed = OverrideAlgorithm(
        create_algorithm("shibata-visibility2"), overrides, amendments=amendments
    )
    for packed in ok[:150]:
        status, _ = simulate_to_quiescence(packed, composed)
        assert status == "gathered", packed


def test_amend_budget_caps_override_rules(disconnect_roots):
    synth = create_algorithm("shibata-visibility2-synth")
    report = explore(algorithm=synth, mode="fsync", with_witnesses=False)
    ok = [
        packed
        for packed in report.graph.roots
        if report.classification.node_class[packed] in ("gathered", "safe")
    ]
    roots = [unpack_nodes(p) for p in ok[:100] + disconnect_roots[:8]]
    result = synthesize(
        base_name="shibata-visibility2",
        roots=roots,
        max_iterations=4,
        allow_amend=True,
        amend_budget=2,
        seed_ruleset=learned_ruleset(),
        ssync_validate=False,
    )
    assert result.override_rules <= 2


# ---------------------------------------------------------------------------
# Checkpoint schema versioning (the satellite fix).
# ---------------------------------------------------------------------------

def test_checkpoint_round_trips_the_amended_layer(tmp_path):
    path = tmp_path / "ckpt.json"
    save_synthesis_checkpoint(
        path,
        base="shibata-visibility2",
        assigned={33: Direction.E},
        blocked={(65, "STAY")},
        iterations=[],
        candidates_evaluated=3,
        explores=2,
        base_census={"safe": 1},
        census={"safe": 2},
        amended={129: None, 257: Direction.SW},
    )
    state = load_synthesis_checkpoint(path)
    assert state["assigned"] == {33: Direction.E}
    assert state["amended"] == {129: None, 257: Direction.SW}
    assert state["blocked"] == {(65, "STAY")}
    payload = json.loads(path.read_text())
    assert payload["version"] == CHECKPOINT_SCHEMA_VERSION


def test_old_schema_checkpoint_fails_with_clear_error(tmp_path):
    """A checkpoint written by the additive-only DSL (schema 1) must raise a
    versioned-schema error, not a KeyError."""
    path = tmp_path / "old.json"
    path.write_text(
        json.dumps(
            {
                "version": 1,
                "base": "shibata-visibility2",
                "assigned": {"33": "E"},
                "blocked": [],
                "iterations": [],
                "candidates_evaluated": 0,
                "explores": 0,
                "base_census": {},
                "census": {},
            }
        )
    )
    with pytest.raises(CheckpointSchemaError) as excinfo:
        load_synthesis_checkpoint(path)
    message = str(excinfo.value)
    assert "schema version 1" in message
    assert str(CHECKPOINT_SCHEMA_VERSION) in message
    assert "--resume" in message


def test_versionless_checkpoint_fails_with_clear_error(tmp_path):
    path = tmp_path / "ancient.json"
    path.write_text(json.dumps({"base": "x", "assigned": {}}))
    with pytest.raises(CheckpointSchemaError):
        load_synthesis_checkpoint(path)


def test_seed_ruleset_and_resume_are_mutually_exclusive(tmp_path):
    """A checkpoint replaces the whole search state, so a seed passed with
    resume would be silently discarded; both layers reject the combination."""
    from repro.cli import main

    line = [(i, 0) for i in range(7)]
    with pytest.raises(ValueError, match="mutually exclusive"):
        synthesize(
            base_name="shibata-visibility2",
            roots=[line],
            max_iterations=0,
            seed_ruleset=learned_ruleset(),
            checkpoint_path=tmp_path / "c.json",
            resume=True,
        )
    with pytest.raises(SystemExit, match="mutually exclusive"):
        main(
            [
                "synth",
                "--size",
                "5",
                "--seed-ruleset",
                "learned",
                "--checkpoint",
                str(tmp_path / "c.json"),
                "--resume",
                "--quiet",
            ]
        )


def test_synthesize_resume_rejects_old_checkpoint(tmp_path):
    path = tmp_path / "old.json"
    path.write_text(json.dumps({"version": 1, "base": "shibata-visibility2"}))
    line = [(i, 0) for i in range(7)]
    with pytest.raises(CheckpointSchemaError):
        synthesize(
            base_name="shibata-visibility2",
            roots=[line],
            max_iterations=0,
            checkpoint_path=path,
            resume=True,
            ssync_validate=False,
        )


def test_cli_synth_resume_rejects_old_checkpoint(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "old.json"
    path.write_text(json.dumps({"version": 1, "base": "shibata-visibility2"}))
    with pytest.raises(SystemExit) as excinfo:
        main(
            [
                "synth",
                "--base",
                "shibata-visibility2",
                "--size",
                "5",
                "--max-iterations",
                "0",
                "--checkpoint",
                str(path),
                "--resume",
                "--quiet",
            ]
        )
    assert "schema version" in str(excinfo.value)
