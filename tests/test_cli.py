"""Tests for the command-line interface."""
import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_enumerate_small(capsys):
    assert main(["enumerate", "--size", "4"]) == 0
    out = capsys.readouterr().out
    assert "44" in out


def test_verify_two_robots(capsys):
    # With two robots every connected configuration is already gathered, so
    # the verification succeeds even for the trivial stay algorithm.
    assert main(["verify", "--algorithm", "stay", "--size", "2"]) == 0
    out = capsys.readouterr().out
    assert "configurations: 3" in out


def test_verify_json_output(capsys):
    main(["verify", "--algorithm", "stay", "--size", "2", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["configurations"] == 3
    assert payload["gathered"] == 3


def test_trace_builtin_configuration(capsys):
    code = main(["trace", "--config", "line-e", "--ascii"])
    out = capsys.readouterr().out
    assert "outcome:" in out
    assert code in (0, 1)


def test_trace_json_configuration(capsys):
    spec = json.dumps([[0, 0], [1, 0], [2, 0], [3, 0], [4, 0], [5, 0], [6, 0]])
    code = main(["trace", "--config", spec, "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["outcome"] in {"gathered", "deadlock", "livelock", "disconnected", "collision", "round-limit"}
    assert code in (0, 1)


def test_trace_rejects_bad_configuration():
    with pytest.raises(SystemExit):
        main(["trace", "--config", "not-a-config"])


def test_range1_candidates_only(capsys):
    assert main(["range1", "--skip-search"]) == 0
    out = capsys.readouterr().out
    assert "east-pull" in out
    assert "fails on" in out
