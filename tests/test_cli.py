"""Tests for the command-line interface."""
import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_enumerate_small(capsys):
    assert main(["enumerate", "--size", "4"]) == 0
    out = capsys.readouterr().out
    assert "44" in out


def test_verify_two_robots(capsys):
    # With two robots every connected configuration is already gathered, so
    # the verification succeeds even for the trivial stay algorithm.
    assert main(["verify", "--algorithm", "stay", "--size", "2"]) == 0
    out = capsys.readouterr().out
    assert "configurations: 3" in out


def test_verify_json_output(capsys):
    main(["verify", "--algorithm", "stay", "--size", "2", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["configurations"] == 3
    assert payload["gathered"] == 3


def test_trace_builtin_configuration(capsys):
    code = main(["trace", "--config", "line-e", "--ascii"])
    out = capsys.readouterr().out
    assert "outcome:" in out
    assert code in (0, 1)


def test_trace_json_configuration(capsys):
    spec = json.dumps([[0, 0], [1, 0], [2, 0], [3, 0], [4, 0], [5, 0], [6, 0]])
    code = main(["trace", "--config", spec, "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["outcome"] in {"gathered", "deadlock", "livelock", "disconnected", "collision", "round-limit"}
    assert code in (0, 1)


def test_trace_rejects_bad_configuration():
    with pytest.raises(SystemExit):
        main(["trace", "--config", "not-a-config"])


def test_range1_candidates_only(capsys):
    assert main(["range1", "--skip-search"]) == 0
    out = capsys.readouterr().out
    assert "east-pull" in out
    assert "fails on" in out


def test_sweep_small_grid(capsys):
    assert (
        main(
            [
                "sweep",
                "--algorithms",
                "stay",
                "--size",
                "3",
                "--max-rounds-grid",
                "50",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "stay" in out


def test_explore_output_file_holds_valid_json(tmp_path, capsys):
    output = tmp_path / "explore.json"
    code = main(
        [
            "explore",
            "--algorithm",
            "shibata-visibility2",
            "--size",
            "5",
            "--no-witnesses",
            "--output",
            str(output),
        ]
    )
    assert code in (0, 1)
    payload = json.loads(output.read_text())
    assert "root_census" in payload
    assert sum(payload["root_census"].values()) == 186
    # stdout keeps the human-readable summary, never the JSON payload.
    out = capsys.readouterr().out
    assert "root_census" in out
    assert not out.lstrip().startswith("{")


def test_explore_json_with_output_keeps_stdout_clean(tmp_path, capsys):
    output = tmp_path / "explore.json"
    code = main(
        [
            "explore",
            "--algorithm",
            "shibata-visibility2",
            "--size",
            "4",
            "--no-witnesses",
            "--json",
            "--output",
            str(output),
        ]
    )
    assert code in (0, 1)
    assert json.loads(output.read_text())
    assert capsys.readouterr().out == ""


def test_exit_codes_documented_in_help(capsys):
    for command in ("verify", "trace", "explore", "synth", "range1"):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        assert "exit codes:" in capsys.readouterr().out


def test_synth_cli_requires_checkpoint_for_resume():
    with pytest.raises(SystemExit):
        main(["synth", "--resume"])


def test_synth_cli_small_run(tmp_path, capsys):
    output = tmp_path / "synth.json"
    ruleset_path = tmp_path / "rules.json"
    code = main(
        [
            "synth",
            "--base",
            "shibata-visibility2[minus-R3c]",
            "--size",
            "5",
            "--max-iterations",
            "2",
            "--chain-budget",
            "100",
            "--max-depth",
            "12",
            "--branch",
            "4",
            "--quiet",
            "--output",
            str(output),
            "--save-ruleset",
            str(ruleset_path),
        ]
    )
    assert code in (0, 1, 2)
    payload = json.loads(output.read_text())
    assert payload["base"] == "shibata-visibility2[minus-R3c]"
    assert "progress" in payload
    assert "ruleset" in payload
    assert ruleset_path.exists()
    # stdout shows the progress table, not raw JSON.
    out = capsys.readouterr().out
    assert "final_ok" in out


def test_synth_algorithm_available_for_other_commands(capsys):
    # The registered synth algorithm plugs into every driver; a 3-robot
    # universe cannot gather (the predicate needs seven robots), so the exit
    # code reports failure while the report itself is complete.
    assert main(["verify", "--algorithm", "shibata-visibility2-synth", "--size", "3"]) == 1
    out = capsys.readouterr().out
    assert "configurations: 11" in out


def test_synth2_algorithm_available_for_other_commands(capsys):
    assert main(["verify", "--algorithm", "shibata-visibility2-synth2", "--size", "3"]) == 1
    out = capsys.readouterr().out
    assert "configurations: 11" in out


def test_synth_cli_allow_amend_small_run(tmp_path, capsys):
    output = tmp_path / "amend.json"
    code = main(
        [
            "synth",
            "--base",
            "shibata-visibility2[minus-R3c]",
            "--size",
            "5",
            "--max-iterations",
            "2",
            "--chain-budget",
            "100",
            "--max-depth",
            "12",
            "--branch",
            "4",
            "--allow-amend",
            "--amend-branch",
            "8",
            "--amend-budget",
            "4",
            "--quiet",
            "--output",
            str(output),
        ]
    )
    assert code in (0, 1, 2)
    payload = json.loads(output.read_text())
    assert payload["override_rules"] <= 4
    assert "override_rules" in payload["progress"]


def test_synth_cli_seed_ruleset(tmp_path, capsys):
    """--seed-ruleset learned starts from the committed additive repair."""
    output = tmp_path / "seeded.json"
    code = main(
        [
            "synth",
            "--base",
            "shibata-visibility2",
            "--size",
            "5",
            "--max-iterations",
            "0",
            "--seed-ruleset",
            "learned",
            "--no-ssync-validate",
            "--quiet",
            "--output",
            str(output),
        ]
    )
    assert code in (0, 1, 2)
    payload = json.loads(output.read_text())
    assert payload["rules"] == 35  # the seed survives a zero-iteration run


def test_synth_cli_rejects_unreadable_seed_ruleset(tmp_path):
    with pytest.raises(SystemExit):
        main(
            [
                "synth",
                "--size",
                "5",
                "--seed-ruleset",
                str(tmp_path / "missing.json"),
                "--quiet",
            ]
        )


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "repro-gathering" in out
    assert __version__.split(".")[0] in out  # metadata and source agree on major


def test_telemetry_manifest_trace_and_run_id_correlation(tmp_path, capsys):
    from repro import obs

    telemetry = tmp_path / "telemetry.json"
    trace = tmp_path / "trace.jsonl"
    obs.export_delta()  # isolate this invocation's counts
    assert (
        main(
            [
                "sweep",
                "--size",
                "4",
                "--max-rounds-grid",
                "200",
                "--telemetry",
                str(telemetry),
                "--trace",
                str(trace),
            ]
        )
        == 0
    )
    capsys.readouterr()

    payload = json.loads(telemetry.read_text())
    assert obs.validate_telemetry(payload) == []
    manifest = payload["manifest"]
    assert manifest["command"] == "sweep"
    assert manifest["args"]["size"] == 4
    assert manifest["exit_status"] == 0
    assert manifest["wall_seconds"] >= manifest["cpu_seconds"] >= 0
    # The snapshot reconciles with the ground truth: 44 connected
    # four-robot configurations, each swept exactly once.
    assert payload["metrics"]["counters"]["runner.configurations"] == 44
    # Every trace record carries the manifest's run id.
    records = [json.loads(line) for line in trace.read_text().splitlines()]
    assert records, "the sweep must emit at least the runner.batch span"
    assert {record["run"] for record in records} == {manifest["run_id"]}
    assert any(record["name"] == "runner.batch" for record in records)
