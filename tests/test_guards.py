"""Isolated tests for the shared guards of the visibility-2 algorithms.

The guards answer local safety questions from a single robot's view; they are
exercised here in isolation over hand-built edge cases and — because the
compass fixes no preferred axis for *safety* (only for tie-breaking) — for
equivariance under the full dihedral group D6: rotating or reflecting both
the view and the candidate direction must never change a guard's verdict.
"""
import pytest

from repro.algorithms.guards import connectivity_safe, entry_uncontested
from repro.core.view import View, all_views_of
from repro.enumeration.polyhex import enumerate_connected_configurations
from repro.grid.directions import DIRECTIONS, Direction, direction_from_vector
from repro.grid.symmetry import reflect_x, rotate

#: The twelve elements of D6 as (reflect?, rotation steps).
SYMMETRIES = [(reflect, steps) for reflect in (False, True) for steps in range(6)]


def apply_symmetry(offset, reflect, steps):
    node = reflect_x(offset) if reflect else offset
    return rotate(node, steps)


def transform_view(view, reflect, steps):
    return View(
        [apply_symmetry(o, reflect, steps) for o in view.occupied_offsets],
        view.visibility_range,
    )


def transform_direction(direction, reflect, steps):
    return direction_from_vector(apply_symmetry(direction.value, reflect, steps))


@pytest.fixture(scope="module")
def sample_views():
    """A deterministic sample of genuine range-2 views from real configurations."""
    views = {}
    for config in enumerate_connected_configurations(7)[::97]:
        for _, view in all_views_of(config, 2):
            views[view] = None
    assert len(views) > 30
    return list(views)


# --------------------------------------------------------------- edge cases

def test_connectivity_safe_requires_a_neighbor():
    lonely = View([(2, 0)], 2)  # a robot two hops away, nobody adjacent
    for direction in DIRECTIONS:
        assert not connectivity_safe(lonely, direction)


def test_connectivity_safe_single_neighbor_pivot():
    view = View([(1, 0)], 2)  # one neighbor to the east
    # Pivoting to NE keeps the neighbor adjacent (target (0,1) touches (1,0)).
    assert connectivity_safe(view, Direction.NE)
    assert connectivity_safe(view, Direction.SE)
    # Walking away to the west strands it.
    assert not connectivity_safe(view, Direction.W)
    assert not connectivity_safe(view, Direction.NW)
    assert not connectivity_safe(view, Direction.SW)


def test_connectivity_safe_bridge_robot_must_not_move():
    """The middle of a 3-line is a cut vertex: every move is unsafe."""
    view = View([(1, 0), (-1, 0)], 2)
    for direction in (Direction.NE, Direction.NW, Direction.SE, Direction.SW):
        assert not connectivity_safe(view, direction)


def test_connectivity_safe_triangle_is_redundant():
    """In a triangle each robot is redundant: pivoting around it is safe."""
    view = View([(1, 0), (0, 1)], 2)  # me + E + NE form a triangle
    assert connectivity_safe(view, Direction.NE)  # onto (0,1)? occupied target —
    # the guard only checks connectivity; legality of the target is separate.
    assert connectivity_safe(view, Direction.E)


def test_connectivity_safe_conservative_outside_window():
    """Robots linked only through nodes outside the window fail the check."""
    # Neighbors E and W linked through me only (inside the window).
    view = View([(1, 0), (-1, 0), (2, 0), (-2, 0)], 2)
    assert not connectivity_safe(view, Direction.NE)


def test_entry_uncontested_basic():
    view = View([(1, 0)], 2)
    # Target (0,1) is adjacent to the robot at (1,0): contested.
    assert not entry_uncontested(view, Direction.NE)
    # Target (-1,0): its only occupied neighbor is me: uncontested.
    assert entry_uncontested(view, Direction.W)


def test_entry_uncontested_ignores_self():
    """The observing robot never contests its own move target."""
    empty = View([], 2)
    for direction in DIRECTIONS:
        assert entry_uncontested(empty, direction)


def test_entry_uncontested_distance_two_contester():
    # A robot at (2,0) is adjacent to my east target (1,0): contested.
    view = View([(2, 0)], 2)
    assert not entry_uncontested(view, Direction.E)
    assert entry_uncontested(view, Direction.W)


# ------------------------------------------------- D6 equivariance (classes)

@pytest.mark.parametrize("reflect,steps", SYMMETRIES)
def test_connectivity_safe_equivariant(sample_views, reflect, steps):
    for view in sample_views:
        for direction in DIRECTIONS:
            expected = connectivity_safe(view, direction)
            got = connectivity_safe(
                transform_view(view, reflect, steps),
                transform_direction(direction, reflect, steps),
            )
            assert got == expected, (view, direction, reflect, steps)


@pytest.mark.parametrize("reflect,steps", SYMMETRIES)
def test_entry_uncontested_equivariant(sample_views, reflect, steps):
    for view in sample_views:
        for direction in DIRECTIONS:
            expected = entry_uncontested(view, direction)
            got = entry_uncontested(
                transform_view(view, reflect, steps),
                transform_direction(direction, reflect, steps),
            )
            assert got == expected, (view, direction, reflect, steps)
