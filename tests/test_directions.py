"""Tests for repro.grid.directions."""
import pytest

from repro.grid.directions import DIRECTIONS, Direction, direction_from_vector


def test_six_directions():
    assert len(DIRECTIONS) == 6
    assert len({d.value for d in DIRECTIONS}) == 6


def test_vectors_sum_to_zero():
    total = (sum(d.dq for d in DIRECTIONS), sum(d.dr for d in DIRECTIONS))
    assert total == (0, 0)


def test_opposites_are_involutive():
    for d in DIRECTIONS:
        assert d.opposite.opposite is d
        assert (d.dq + d.opposite.dq, d.dr + d.opposite.dr) == (0, 0)


def test_specific_opposites():
    assert Direction.E.opposite is Direction.W
    assert Direction.NE.opposite is Direction.SW
    assert Direction.NW.opposite is Direction.SE


def test_rotation_ccw_full_turn_is_identity():
    for d in DIRECTIONS:
        assert d.rotate_ccw(6) is d
        assert d.rotate_cw(6) is d


def test_rotation_one_step():
    assert Direction.E.rotate_ccw() is Direction.NE
    assert Direction.NE.rotate_ccw() is Direction.NW
    assert Direction.E.rotate_cw() is Direction.SE


def test_rotation_ccw_cw_inverse():
    for d in DIRECTIONS:
        for k in range(6):
            assert d.rotate_ccw(k).rotate_cw(k) is d


def test_direction_from_vector_roundtrip():
    for d in DIRECTIONS:
        assert direction_from_vector(d.value) is d


def test_direction_from_vector_invalid():
    with pytest.raises(ValueError):
        direction_from_vector((2, 0))
    with pytest.raises(ValueError):
        direction_from_vector((0, 0))
