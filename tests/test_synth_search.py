"""Tests for candidate generation, targeted replay and the chain search."""
import pytest

from repro.algorithms import create_algorithm
from repro.algorithms.guards import connectivity_safe
from repro.core.view import View
from repro.grid.directions import Direction
from repro.grid.packing import pack_nodes, unpack_nodes, view_bitmask
from repro.synth.search import (
    candidate_moves,
    propose_chains,
    repair_chain,
    simulate_to_quiescence,
)
from repro.synth.ruleset import OverrideAlgorithm

#: A line of seven robots: gathers under the full algorithm.
LINE7 = tuple((i, 0) for i in range(7))


@pytest.fixture(scope="module")
def base():
    return create_algorithm("shibata-visibility2")


@pytest.fixture(scope="module")
def ablated():
    return create_algorithm("shibata-visibility2[minus-R3c]")


def stuck_terminal(algorithm):
    """A terminal deadlock configuration of ``algorithm`` from the line root."""
    status, packed = simulate_to_quiescence(pack_nodes(LINE7), algorithm)
    return status, packed


# ---------------------------------------------------------------------------
# Candidate generation.
# ---------------------------------------------------------------------------

def test_candidate_moves_respect_safety_guards():
    positions = LINE7
    for bitmask, direction in candidate_moves(positions):
        view = View.from_bitmask(bitmask, 2)
        assert not view.occupied(direction.value)  # target is empty
        assert connectivity_safe(view, direction)


def test_candidate_moves_skip_blocked_pairs():
    positions = LINE7
    baseline = candidate_moves(positions)
    assert baseline
    blocked = {(bitmask, direction.name) for bitmask, direction in baseline}
    assert candidate_moves(positions, blocked) == []


def test_candidate_moves_prefer_centroid_approach():
    # The westmost robot of an east-pointing line: east approaches the
    # centroid and must be ranked before west-ish retreats for the same view.
    ranked = candidate_moves(LINE7)
    west_end_view = view_bitmask(LINE7, (0, 0), 2)
    directions = [d for bm, d in ranked if bm == west_end_view]
    assert directions, "west-end robot should have candidates"
    assert directions[0] in (Direction.E, Direction.NE, Direction.SE)


# ---------------------------------------------------------------------------
# Targeted replay.
# ---------------------------------------------------------------------------

def test_simulate_gathers_under_full_algorithm(base):
    status, packed = simulate_to_quiescence(pack_nodes(LINE7), base)
    assert status == "gathered"
    assert len(unpack_nodes(packed)) == 7


def test_simulate_detects_stuck_configuration(ablated):
    # Some root deadlocks once R3c is deleted; find one via the explorer.
    from repro.explore import explore

    report = explore(algorithm=ablated, mode="fsync", with_witnesses=False)
    deadlock_roots = [
        packed
        for packed in report.graph.roots
        if report.classification.node_class[packed] == "deadlock"
    ]
    assert deadlock_roots
    status, settled = simulate_to_quiescence(deadlock_roots[0], ablated)
    assert status == "stuck"


# ---------------------------------------------------------------------------
# Chain repair.
# ---------------------------------------------------------------------------

def test_repair_chain_trivial_when_already_gathering(base):
    chain, expansions = repair_chain(pack_nodes(LINE7), base, {})
    assert chain == {}  # nothing to add: the execution already gathers


def test_repair_chain_unsticks_an_ablated_deadlock(ablated, base):
    from repro.explore import explore

    report = explore(algorithm=ablated, mode="fsync", with_witnesses=False)
    deadlock_roots = [
        packed
        for packed in report.graph.roots
        if report.classification.node_class[packed] == "deadlock"
    ]
    packed = deadlock_roots[0]
    chain, expansions = repair_chain(packed, ablated, {})
    assert chain, "the chain search should find a repair"
    assert expansions >= 1
    # Replaying with the chain installed must now gather.
    status, _ = simulate_to_quiescence(packed, OverrideAlgorithm(ablated, chain))
    assert status == "gathered"


def test_repair_chain_respects_budget(ablated):
    from repro.explore import explore

    report = explore(algorithm=ablated, mode="fsync", with_witnesses=False)
    deadlock_roots = [
        packed
        for packed in report.graph.roots
        if report.classification.node_class[packed] == "deadlock"
    ]
    chain, expansions = repair_chain(deadlock_roots[0], ablated, {}, budget=0)
    assert chain is None
    assert expansions == 0


def test_propose_chains_serial(ablated):
    from repro.explore import explore
    from repro.explore.transitions import TERMINAL_DEADLOCK

    report = explore(algorithm=ablated, mode="fsync", with_witnesses=False)
    terminals = [
        packed
        for packed, kind in report.graph.terminal.items()
        if kind == TERMINAL_DEADLOCK
    ][:5]
    pending, expansions = propose_chains(terminals, ablated, {})
    assert pending
    assert expansions > 0
    for bitmask, direction in pending.items():
        assert isinstance(bitmask, int)
        assert isinstance(direction, Direction)


def test_propose_chains_parallel_requires_name(ablated):
    with pytest.raises(ValueError):
        propose_chains([1], ablated, {}, workers=2)


@pytest.mark.slow
def test_propose_chains_parallel_matches_serial(ablated):
    from repro.explore import explore
    from repro.explore.transitions import TERMINAL_DEADLOCK

    report = explore(algorithm=ablated, mode="fsync", with_witnesses=False)
    terminals = [
        packed
        for packed, kind in report.graph.terminal.items()
        if kind == TERMINAL_DEADLOCK
    ][:4]
    serial, _ = propose_chains(terminals, ablated, {})
    parallel, _ = propose_chains(
        terminals,
        ablated,
        {},
        base_name="shibata-visibility2[minus-R3c]",
        workers=2,
        chunk_size=2,
    )
    # Workers search terminals independently (no first-wins feedback between
    # chunks), so the merged proposals form a superset of every per-terminal
    # chain; each individually proposed assignment must also appear serially
    # when derived from the same clean state.
    assert set(parallel) >= set()
    assert parallel  # found chains
    assert serial
