"""The out-of-core sharded table tier: byte identity with RAM, edge cases.

Property tests for the disk tier (:mod:`repro.core.sharded_tables`):

* the sharded table is **byte-identical** to the monolithic in-RAM table —
  every functional-graph array, the memoized FSYNC summary, exhaustive
  sweeps, SSYNC expansions, explorer graphs (both modes) and single-execution
  traces;
* the vectorized sort+adjacent-compare collision path equals the pairwise
  oracle over all 3,652 n=7 rows and sampled n=8 rows;
* shard boundaries behave: shard size 1, a partial last shard, corrupt /
  stale / aborted shard stores are detected and rebuilt;
* the scope policy admits n=10 under the default budget and the n=9/n=10
  census pins are internally consistent.
"""
import json
import os
import random

import pytest

np = pytest.importorskip("numpy")  # the sharded tier rides the table kernel

from repro.algorithms.visibility2 import ShibataGatheringAlgorithm
from repro.analysis.census_pins import (
    N9_ROOTS,
    N10_ROOTS,
    PINNED_CENSUS_N9,
    PINNED_CENSUS_N10,
    census_ok,
    pinned_census,
)
from repro.core import table_kernel
from repro.core.configuration import Configuration
from repro.core.engine import run_execution
from repro.core.runner import autotune_chunk_size, run_many
from repro.core.sharded_tables import (
    ShardedTableError,
    attach_sharded,
    build_sharded_table,
    open_sharded_table,
    sharded_handle,
    sharded_successor_table,
    sharded_table_dir,
)
from repro.core.table_kernel import (
    SuccessorTable,
    estimate_sharded_bytes,
    record_peak_rss,
    sharded_in_scope,
    sharded_max_table_size,
    successor_table,
)
from repro.enumeration.polyhex import FIXED_POLYHEX_COUNTS
from repro.explore import explore
from repro.obs import metrics as _obs


def _algorithm():
    return ShibataGatheringAlgorithm()


@pytest.fixture
def shard_cache(tmp_path, monkeypatch):
    """An isolated shard-store root for one test."""
    monkeypatch.setenv("REPRO_TABLE_CACHE", str(tmp_path))
    return str(tmp_path)


@pytest.fixture
def sharded_only_scope(monkeypatch):
    """Force every size out of the in-RAM tier so the sharded tier serves it.

    The facade normally only answers past ``max_table_size()``; the identity
    tests need it to answer the small spaces where the monolithic table is
    available as the oracle.
    """
    monkeypatch.setattr(table_kernel, "table_in_scope", lambda size: False)


# ---------------------------------------------------------------- scope policy
def test_sharded_scope_policy():
    assert sharded_max_table_size() == 10
    assert sharded_in_scope(10)
    assert not sharded_in_scope(11)
    assert not sharded_in_scope(0)
    # ~20 MB narrow residency at n=10 — two orders under the in-RAM estimate.
    assert estimate_sharded_bytes(10) == FIXED_POLYHEX_COUNTS[10] * (35 + 2 * 10)
    # A tiny budget collapses the sharded tier too.
    assert sharded_max_table_size(budget=1) < 10


def test_peak_rss_gauge_records():
    rss = record_peak_rss()
    assert rss > 0
    assert _obs.gauge("table.peak_rss_bytes").value == rss


# ------------------------------------------------------------------ the pins
def test_n9_n10_pin_accessors():
    assert FIXED_POLYHEX_COUNTS[9] == N9_ROOTS == 77359
    assert FIXED_POLYHEX_COUNTS[10] == N10_ROOTS == 362671
    for (alg, mode), pinned in PINNED_CENSUS_N9.items():
        assert sum(pinned.values()) == N9_ROOTS
        assert pinned_census(alg, mode, size=9) == pinned
    for (alg, mode), pinned in PINNED_CENSUS_N10.items():
        assert mode == "fsync"  # SSYNC at n=10 awaits a disk-streamed BFS
        assert sum(pinned.values()) == N10_ROOTS
        assert pinned_census(alg, mode, size=10) == pinned
    # Adversarial SSYNC can only lose roots relative to FSYNC.
    fsync = pinned_census("shibata-visibility2", "fsync", size=9)
    ssync = pinned_census("shibata-visibility2", "ssync", size=9)
    assert census_ok(ssync) <= census_ok(fsync)


# ----------------------------------------------------------- byte identity
@pytest.mark.parametrize("size,shard_rows", [(7, 1000), (8, 4096)])
def test_sharded_arrays_identical_to_monolithic(shard_cache, size, shard_rows):
    mono = successor_table(_algorithm(), size)
    sharded = sharded_successor_table(_algorithm(), size, shard_rows=shard_rows)
    vt = mono.view
    assert sharded.view.count == vt.count == FIXED_POLYHEX_COUNTS[size]
    for field in ("kind", "succ", "mover_bits", "mover_count", "collision_code"):
        assert np.array_equal(getattr(sharded, field), getattr(mono, field)), field
    assert np.array_equal(sharded.view.gathered, vt.gathered)
    assert np.array_equal(sharded.view.diameters, vt.diameters)
    assert np.array_equal(sharded.codes, mono.codes)
    rng = random.Random(size)
    for row in rng.sample(range(vt.count), 64):
        assert np.array_equal(sharded.move_code[row], mono.move_code[row])
        assert np.array_equal(sharded._row_positions(row), vt.positions[row])
        assert sharded.packed_of_row(row) == vt.packed[row]


def test_sharded_summary_sweep_and_expansions_identical(shard_cache):
    mono = successor_table(_algorithm(), 7)
    sharded = sharded_successor_table(_algorithm(), 7, shard_rows=512)
    ms, ss = mono.fsync_summary(), sharded.fsync_summary()
    for field in ("outcome", "rounds", "moves", "final"):
        assert np.array_equal(getattr(ms, field), getattr(ss, field)), field
    rows = np.arange(mono.view.count)
    assert mono.fsync_verdict(rows).root_census == sharded.fsync_verdict(rows).root_census
    for outs_m, outs_s in zip(
        mono.batch_outcomes(rows[:500], 500), sharded.batch_outcomes(rows[:500], 500)
    ):
        assert list(outs_m) == list(outs_s)
    rng = random.Random(7)
    for row in rng.sample(range(mono.view.count), 48):
        assert mono.expand_row(row, "fsync") == sharded.expand_row(row, "fsync")
        assert mono.expand_row(row, "ssync") == sharded.expand_row(row, "ssync")
        assert mono.walk_outcome(row, 300) == sharded.walk_outcome(row, 300)


def test_sharded_explorer_graphs_identical(shard_cache, sharded_only_scope):
    # With the in-RAM tier disabled the explorer streams from the shard
    # store; the packed kernel is the independent oracle.
    for mode in ("fsync", "ssync"):
        via_sharded = explore(
            algorithm_name="shibata-visibility2", mode=mode, size=5,
            with_witnesses=False, kernel="table",
        )
        oracle = explore(
            algorithm_name="shibata-visibility2", mode=mode, size=5,
            with_witnesses=False, kernel="packed",
        )
        assert via_sharded.root_census == oracle.root_census
        assert via_sharded.graph.edges == oracle.graph.edges
        assert via_sharded.graph.terminal == oracle.graph.terminal


def test_sharded_traces_identical_to_packed(shard_cache, sharded_only_scope):
    algorithm = _algorithm()
    table = sharded_successor_table(algorithm, 6, shard_rows=200)
    rng = random.Random(6)
    for row in rng.sample(range(table.view.count), 16):
        nodes = [(int(q) + 3, int(r) - 2) for q, r in table._row_positions(row)]
        configuration = Configuration(nodes)
        via_table = run_execution(configuration, algorithm, kernel="table",
                                  record_rounds=True)
        oracle = run_execution(configuration, _algorithm(), kernel="packed",
                               record_rounds=True)
        assert via_table.outcome == oracle.outcome
        assert via_table.num_rounds == oracle.num_rounds
        assert via_table.total_moves == oracle.total_moves
        assert [r.configuration for r in via_table.rounds] == [
            r.configuration for r in oracle.rounds
        ]


def test_runner_batch_rides_sharded_tier(shard_cache, sharded_only_scope):
    algorithm = _algorithm()
    table = sharded_successor_table(algorithm, 5, shard_rows=33)
    roots = [
        tuple((int(q), int(r)) for q, r in table._row_positions(row))
        for row in range(0, table.view.count, 7)
    ]
    batch = run_many(roots, algorithm=algorithm, kernel="table")
    oracle = run_many(roots, algorithm=_algorithm(), kernel="packed")
    assert [
        (r.outcome, r.rounds, r.total_moves) for r in batch.results
    ] == [(r.outcome, r.rounds, r.total_moves) for r in oracle.results]


# --------------------------------------------------- vectorized == oracle
def test_vectorized_resolution_equals_pairwise_oracle_n7():
    mono = successor_table(_algorithm(), 7)
    oracle = SuccessorTable._from_codes(mono.view, mono.codes, oracle=True)
    for field in ("kind", "succ", "mover_bits", "mover_count", "collision_code"):
        assert np.array_equal(getattr(mono, field), getattr(oracle, field)), field


def test_vectorized_resolution_equals_pairwise_oracle_sampled_n8():
    from repro.core.table_kernel import resolve_rows_arrays

    mono = successor_table(_algorithm(), 8)
    vt = mono.view
    rng = random.Random(8)
    rows = np.array(sorted(rng.sample(range(vt.count), 2048)))
    move_code = np.stack([np.asarray(mono.move_code[int(r)]) for r in rows])
    fast = resolve_rows_arrays(
        vt.positions[rows], move_code, vt.gathered[rows], vt.rows_of_canonical
    )
    slow = resolve_rows_arrays(
        vt.positions[rows], move_code, vt.gathered[rows], vt.rows_of_canonical,
        oracle=True,
    )
    for got, want in zip(fast, slow):
        assert np.array_equal(got, want)


# ------------------------------------------------------------- shard edges
def test_shard_rows_one_and_partial_last_shard(shard_cache):
    mono = successor_table(_algorithm(), 4)
    # Shard size 1: one row per shard file.
    one = sharded_successor_table(_algorithm(), 4, shard_rows=1)
    assert one.shards == mono.view.count
    assert np.array_equal(one.succ, mono.succ)
    # A last partial shard: 7 does not divide the 22-row n=4 space.
    ragged = sharded_successor_table(_algorithm(), 4, shard_rows=7)
    assert ragged.shards == -(-mono.view.count // 7)
    assert np.array_equal(ragged.kind, mono.kind)
    last = ragged.shards - 1
    tail = mono.view.count - last * 7
    assert len(ragged._shard_arrays(last)["positions"]) == tail


def test_corrupt_shard_file_detected_and_rebuilt(shard_cache):
    algorithm = _algorithm()
    directory = build_sharded_table(algorithm, 4, sharded_table_dir(algorithm, 4, 8), 8)
    victim = os.path.join(directory, "shard-0001-positions.npy")
    with open(victim, "ab") as handle:
        handle.write(b"garbage")
    with pytest.raises(ShardedTableError):
        open_sharded_table(directory, 4)
    # The memoized loader treats the failure as staleness and rebuilds.
    rebuilt = sharded_successor_table(algorithm, 4, shard_rows=8)
    assert np.array_equal(rebuilt.succ, successor_table(_algorithm(), 4).succ)


def test_stale_format_and_aborted_build_rejected(shard_cache):
    algorithm = _algorithm()
    directory = build_sharded_table(algorithm, 3, sharded_table_dir(algorithm, 3, 4), 4)
    manifest_path = os.path.join(directory, "manifest.json")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    manifest["format"] = 999
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle)
    with pytest.raises(ShardedTableError):
        open_sharded_table(directory, 3)
    # An aborted build is a directory without a manifest at all.
    os.remove(manifest_path)
    with pytest.raises(ShardedTableError):
        open_sharded_table(directory, 3)
    # A size mismatch is stale too.
    other = build_sharded_table(algorithm, 4, sharded_table_dir(algorithm, 4, 4), 4)
    with pytest.raises(ShardedTableError):
        open_sharded_table(other, 5)


def test_sharded_table_is_immutable(shard_cache):
    table = sharded_successor_table(_algorithm(), 4, shard_rows=8)
    with pytest.raises(NotImplementedError):
        table.derive({}, {})


# -------------------------------------------------------- worker attachment
def test_attach_sharded_registers_on_worker_algorithm(shard_cache):
    from repro.core.runner import worker_algorithm
    from repro.core.shared_tables import attach_table, detach_all

    algorithm = _algorithm()
    table = sharded_successor_table(algorithm, 4, shard_rows=8)
    handle = sharded_handle(table, "shibata-visibility2")
    try:
        attached = attach_table(handle)  # one dispatch point for both tiers
        assert np.array_equal(attached.succ, table.succ)
        worker = worker_algorithm("shibata-visibility2")
        assert worker._sharded_tables[4] is attached
        # Memoized: a second attach is the same object.
        assert attach_sharded(handle) is attached
    finally:
        detach_all()
    assert getattr(worker_algorithm("shibata-visibility2"), "_sharded_tables", {}) == {}


# ------------------------------------------------------------ chunk autotune
def test_autotune_chunk_size_bounds():
    assert autotune_chunk_size(0, 2) == 32
    assert autotune_chunk_size(100, 2) == 32
    assert autotune_chunk_size(16689, 2) == -(-16689 // 8)
    assert autotune_chunk_size(10**9, 2) == 4096
    # More workers -> smaller chunks (finer balancing).
    assert autotune_chunk_size(16689, 8) < autotune_chunk_size(16689, 2)
