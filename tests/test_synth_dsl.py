"""Tests for the guard DSL: semantics, serialization and D6 equivariance."""
import pytest

from repro.algorithms.guards import connectivity_safe, entry_uncontested
from repro.core.view import View, view_of
from repro.core.configuration import Configuration
from repro.enumeration.polyhex import enumerate_connected_configurations
from repro.grid.directions import Direction
from repro.grid.packing import pack_offsets
from repro.synth.dsl import ATOM_KINDS, GuardRule, RuleSet, transform_view


def make_view(*offsets):
    return View(offsets, visibility_range=2)


# ---------------------------------------------------------------------------
# Atom semantics.
# ---------------------------------------------------------------------------

def test_occ_emp_atoms():
    view = make_view((1, 0), (0, 1))
    rule_occ = GuardRule("r", ((("occ", 2, 0)),), Direction.E)
    assert rule_occ.matches(view)
    rule_emp = GuardRule("r", ((("emp", -2, 0)),), Direction.E)
    assert rule_emp.matches(view)
    assert not GuardRule("r", ((("occ", -2, 0)),), Direction.E).matches(view)


def test_view_eq_atom_matches_exactly():
    view = make_view((1, 0), (2, 0))
    bitmask = view.bitmask()
    assert GuardRule("r", (("view_eq", bitmask),), Direction.W).matches(view)
    other = make_view((1, 0))
    assert not GuardRule("r", (("view_eq", bitmask),), Direction.W).matches(other)


def test_degree_and_count_atoms():
    view = make_view((1, 0), (0, 1), (2, 0))  # two adjacent, one at distance 2
    assert GuardRule("r", (("degree_eq", 2),), Direction.E).matches(view)
    assert GuardRule("r", (("degree_ge", 2),), Direction.E).matches(view)
    assert GuardRule("r", (("degree_le", 2),), Direction.E).matches(view)
    assert not GuardRule("r", (("degree_ge", 3),), Direction.E).matches(view)
    assert GuardRule("r", (("robots_eq", 3),), Direction.E).matches(view)


def test_sym_atom():
    # A lone robot plus observer: the two-node set has symmetry order 4
    # (identity, the 180-degree rotation and two reflections).
    view = make_view((1, 0))
    assert GuardRule("r", (("sym_eq", 4),), Direction.E).matches(view)


def test_guard_atoms_follow_rule_direction():
    view = make_view((1, 0), (1, -1))
    for direction in Direction:
        rule = GuardRule("r", (("conn_safe",),), direction)
        assert rule.matches(view) == connectivity_safe(view, direction)
        rule = GuardRule("r", (("uncontested",),), direction)
        assert rule.matches(view) == entry_uncontested(view, direction)


def test_toward_centroid_atom():
    # All mass to the east: moving east approaches, moving west retreats.
    view = make_view((1, 0), (2, 0))
    assert GuardRule("r", (("toward_centroid",),), Direction.E).matches(view)
    assert not GuardRule("r", (("toward_centroid",),), Direction.W).matches(view)


def test_conjunction_requires_all_atoms():
    view = make_view((1, 0))
    rule = GuardRule("r", (("occ", 2, 0), ("emp", -2, 0), ("degree_eq", 1)), Direction.W)
    assert rule.matches(view)
    rule = GuardRule("r", (("occ", 2, 0), ("occ", -2, 0)), Direction.W)
    assert not rule.matches(view)


def test_unknown_atom_rejected():
    with pytest.raises(ValueError):
        GuardRule("r", (("nope",),), Direction.E)
    with pytest.raises(ValueError):
        GuardRule("r", (("occ", 1, 0),), Direction.E)  # label parity invalid


# ---------------------------------------------------------------------------
# Rule sets.
# ---------------------------------------------------------------------------

def test_ruleset_first_match_wins():
    view = make_view((1, 0))
    ruleset = RuleSet(
        "test",
        (
            GuardRule("first", (("occ", 2, 0),), Direction.W),
            GuardRule("second", (("occ", 2, 0),), Direction.E),
        ),
    )
    assert ruleset.explain(view) == ("first", Direction.W)
    assert ruleset.compute(make_view((0, 1))) is None
    assert ruleset.explain(make_view((0, 1))) == (None, None)


def test_ruleset_serialization_round_trip():
    ruleset = RuleSet(
        "round-trip",
        (
            GuardRule("a", (("view_eq", 33), ("conn_safe",)), Direction.NE),
            GuardRule("b", (("occ", 2, 0), ("degree_le", 3)), Direction.SW),
        ),
    )
    rebuilt = RuleSet.from_dict(ruleset.to_dict())
    assert rebuilt == ruleset
    view = make_view((1, 0), (1, -1))
    assert rebuilt.compute(view) == ruleset.compute(view)


# ---------------------------------------------------------------------------
# D6 equivariance: every atom kind commutes with the group action.
# ---------------------------------------------------------------------------

def _sample_views():
    views = []
    for config in enumerate_connected_configurations(5)[::7]:
        for pos in config.sorted_nodes():
            views.append(view_of(config, pos, 2))
    return views


_RULES_BY_KIND = {
    "occ": GuardRule("r", (("occ", 1, 1),), Direction.NE),
    "emp": GuardRule("r", (("emp", 3, -1),), Direction.SE),
    "view_eq": GuardRule("r", (("view_eq", pack_offsets([(1, 0), (0, 1)], 2)),), Direction.E),
    "degree_eq": GuardRule("r", (("degree_eq", 2),), Direction.E),
    "degree_ge": GuardRule("r", (("degree_ge", 2),), Direction.E),
    "degree_le": GuardRule("r", (("degree_le", 1),), Direction.E),
    "robots_eq": GuardRule("r", (("robots_eq", 4),), Direction.E),
    "sym_eq": GuardRule("r", (("sym_eq", 4),), Direction.E),
    "conn_safe": GuardRule("r", (("conn_safe",),), Direction.NW),
    "uncontested": GuardRule("r", (("uncontested",),), Direction.E),
    "toward_centroid": GuardRule("r", (("toward_centroid",),), Direction.SW),
}


def test_every_atom_kind_has_an_equivariance_rule():
    assert set(_RULES_BY_KIND) == set(ATOM_KINDS)


@pytest.mark.parametrize("kind", sorted(_RULES_BY_KIND))
def test_dsl_rules_are_d6_equivariant(kind):
    rule = _RULES_BY_KIND[kind]
    views = _sample_views()
    assert views
    for rotation in range(6):
        for reflect in (False, True):
            moved = rule.transformed(rotation, reflect)
            for view in views:
                assert rule.matches(view) == moved.matches(
                    transform_view(view, rotation, reflect)
                ), (kind, rotation, reflect, view)


def test_transform_round_trips_through_the_inverse():
    rule = GuardRule(
        "r", (("occ", 2, 0), ("view_eq", pack_offsets([(1, 0)], 2)), ("conn_safe",)), Direction.E
    )
    # Reflect twice = identity; rotate k then 6-k = identity.
    assert rule.transformed(0, True).transformed(0, True) == rule
    for rotation in range(6):
        assert rule.transformed(rotation, False).transformed((6 - rotation) % 6, False) == rule


# ---------------------------------------------------------------------------
# Agreement with a hand-written reference predicate on all 3652 roots.
# ---------------------------------------------------------------------------

def _reference_predicate(view):
    """Hand-written twin of _REFERENCE_RULE, using the View API directly."""
    if not view.occupied_label((2, -2)):
        return False
    if view.occupied_label((1, -1)) or view.occupied_label((-1, -1)):
        return False
    if view.adjacent_degree() > 3:
        return False
    if not connectivity_safe(view, Direction.SW):
        return False
    # toward_centroid, restated independently (count-scaled integer form).
    offsets = list(view.occupied_offsets)
    count = len(offsets) + 1
    sq = sum(o[0] for o in offsets)
    sr = sum(o[1] for o in offsets)

    def norm(q, r):
        return max(abs(q), abs(r), abs(q + r))

    dq, dr = Direction.SW.value
    return norm(count * dq - sq, count * dr - sr) <= norm(-sq, -sr)


_REFERENCE_RULE = GuardRule(
    "ref",
    (
        ("occ", 2, -2),
        ("emp", 1, -1),
        ("emp", -1, -1),
        ("degree_le", 3),
        ("conn_safe",),
        ("toward_centroid",),
    ),
    Direction.SW,
)


def test_dsl_agrees_with_reference_predicate_on_all_roots():
    """Every robot view of every canonical 7-robot root evaluates identically."""
    mismatches = 0
    checked = 0
    fired = 0
    for config in enumerate_connected_configurations(7):
        for pos in config.sorted_nodes():
            view = view_of(config, pos, 2)
            checked += 1
            expected = _reference_predicate(view)
            fired += expected
            if _REFERENCE_RULE.matches(view) != expected:
                mismatches += 1
    assert checked == 3652 * 7
    assert mismatches == 0
    assert fired > 0  # the predicate is not vacuous over the root set
