"""The packed kernel must be an exact drop-in for the reference engine.

The memoized packed kernel (``kernel="packed"``) and the seed View-object
engine (``kernel="reference"``) implement the same semantics; these tests
prove it empirically on random samples of the enumerated connected
configurations for **every registered algorithm**, comparing outcome, round
count, move totals, final configuration and (on a subsample) the full
per-round move sequence.  Collision semantics of the packed path get direct
unit tests in ``test_engine_packed_collisions.py``.
"""
import random

import pytest

from repro.algorithms import available_algorithms, create_algorithm
from repro.core.configuration import Configuration
from repro.core.engine import run_execution
from repro.core.scheduler import RoundRobinScheduler
from repro.enumeration.polyhex import enumerate_connected_configurations


def _sample_configurations(size, count, seed):
    configurations = enumerate_connected_configurations(size)
    rng = random.Random(seed)
    if count >= len(configurations):
        return configurations
    return rng.sample(configurations, count)


def _trace_fingerprint(trace):
    return {
        "outcome": trace.outcome,
        "rounds": trace.num_rounds,
        "termination_round": trace.termination_round,
        "total_moves": trace.total_moves,
        "final": trace.final,
        "collision_kind": trace.collision_kind,
        "cycle_start": trace.cycle_start,
        "algorithm": trace.algorithm_name,
        "scheduler": trace.scheduler_name,
    }


#: Sample sizes per algorithm: the full-visibility baseline is expensive on
#: the reference path (126-node views), the others are cheap.
def _sample_size_for(name):
    return 8 if name == "full-visibility-greedy" else 24


@pytest.mark.parametrize("name", available_algorithms())
def test_packed_matches_reference_for_every_registered_algorithm(name):
    algorithm = create_algorithm(name)
    seed = sum(map(ord, name))  # stable across processes, distinct per algorithm
    for configuration in _sample_configurations(7, _sample_size_for(name), seed=seed):
        packed = run_execution(
            configuration, algorithm, max_rounds=600, record_rounds=False, kernel="packed"
        )
        reference = run_execution(
            configuration, algorithm, max_rounds=600, record_rounds=False, kernel="reference"
        )
        assert _trace_fingerprint(packed) == _trace_fingerprint(reference), (
            f"kernel divergence for {name} from {configuration!r}"
        )


def test_packed_matches_reference_move_by_move():
    algorithm = create_algorithm("shibata-visibility2")
    for configuration in _sample_configurations(7, 12, seed=7):
        packed = run_execution(configuration, algorithm, max_rounds=600, kernel="packed")
        reference = run_execution(
            configuration, algorithm, max_rounds=600, kernel="reference"
        )
        assert len(packed.rounds) == len(reference.rounds)
        for packed_round, reference_round in zip(packed.rounds, reference.rounds):
            assert packed_round.index == reference_round.index
            assert packed_round.configuration == reference_round.configuration
            assert packed_round.moves == reference_round.moves
            assert packed_round.activated == reference_round.activated


def test_packed_matches_reference_under_ssync_scheduler():
    algorithm = create_algorithm("shibata-visibility2")
    for configuration in _sample_configurations(7, 10, seed=11):
        packed = run_execution(
            configuration,
            algorithm,
            scheduler=RoundRobinScheduler(robots_per_round=2),
            max_rounds=80,
            record_rounds=False,
            kernel="packed",
        )
        reference = run_execution(
            configuration,
            algorithm,
            scheduler=RoundRobinScheduler(robots_per_round=2),
            max_rounds=80,
            record_rounds=False,
            kernel="reference",
        )
        assert _trace_fingerprint(packed) == _trace_fingerprint(reference)


def test_packed_matches_reference_on_small_sizes():
    for size in (2, 3, 4, 5):
        algorithm = create_algorithm("shibata-visibility2")
        for configuration in enumerate_connected_configurations(size):
            packed = run_execution(
                configuration, algorithm, max_rounds=200, record_rounds=False, kernel="packed"
            )
            reference = run_execution(
                configuration, algorithm, max_rounds=200, record_rounds=False, kernel="reference"
            )
            assert _trace_fingerprint(packed) == _trace_fingerprint(reference)


def test_compute_moves_packed_matches_compute_moves():
    from repro.core.engine import compute_moves, compute_moves_packed
    from repro.grid.coords import Coord

    algorithm = create_algorithm("shibata-visibility2")
    for configuration in _sample_configurations(7, 15, seed=3):
        reference = compute_moves(configuration, algorithm)
        # Plain (q, r) tuples in, Coord keys out — same mapping either way.
        packed = compute_moves_packed(
            {(c.q, c.r) for c in configuration.nodes}, algorithm
        )
        assert packed == reference
        assert all(isinstance(key, Coord) for key in packed)


def test_compute_moves_packed_respects_activation():
    from repro.core.engine import compute_moves, compute_moves_packed
    from repro.grid.coords import Coord

    algorithm = create_algorithm("shibata-visibility2")
    configuration = next(iter(_sample_configurations(7, 1, seed=5)))
    activated = set(configuration.sorted_nodes()[:3])
    assert compute_moves_packed(configuration.nodes, algorithm, activated) == (
        compute_moves(configuration, algorithm, activated)
    )
    # The non-cached fallback path must agree too.
    from repro.core.algorithm import FunctionAlgorithm

    inner = create_algorithm("shibata-visibility2")
    uncached = FunctionAlgorithm(
        inner.compute, visibility_range=2, deterministic=False
    )
    moves = compute_moves_packed(configuration.nodes, uncached, activated)
    assert moves == compute_moves(configuration, uncached, activated)
    assert all(isinstance(key, Coord) for key in moves)


def test_unknown_kernel_rejected():
    algorithm = create_algorithm("stay")
    with pytest.raises(ValueError):
        run_execution(Configuration([(0, 0)]), algorithm, kernel="warp")


def test_non_deterministic_algorithm_never_cached():
    from repro.core.algorithm import FunctionAlgorithm
    from repro.grid.directions import Direction

    calls = []

    def flaky(view):
        calls.append(1)
        return None

    algorithm = FunctionAlgorithm(flaky, visibility_range=1, deterministic=False)
    run_execution(Configuration([(0, 0), (1, 0)]), algorithm, max_rounds=3)
    # Every robot's Compute ran every round: 2 robots x 1 quiescent round.
    assert len(calls) == 2
    assert not hasattr(algorithm, "_decision_cache")
