"""Tests for the CI benchmark-regression gate (scripts/bench_compare.py) and
the pinned-census helpers it builds on."""
import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.analysis.census_pins import (
    PINNED_CENSUS,
    PINNED_CENSUS_N8,
    PINNED_CENSUS_N9,
    PINNED_CENSUS_N10,
    THEOREM2_ROOTS,
    census_ok,
    census_regressions,
    pinned_census,
)

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench_compare.py"


@pytest.fixture(scope="module")
def bench_compare():
    spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_compare"] = module
    spec.loader.exec_module(module)
    return module


#: Neutral values for every key the gate requires candidates to record
#: (identical on both sides, so they never trip the slowdown/census checks).
_REQUIRED_DEFAULTS = {
    "exhaustive_verification_seconds": 1.0,
    "table_sweep_seconds": 1.0,
    "table_sweep_warm_seconds": 1.0,
    "n8_table_sweep_seconds": 1.0,
    "n9_table_sweep_seconds": 1.0,
    "n10_shard_build_seconds": 1.0,
    "shard_sweep_seconds": 1.0,
    "parallel_sweep_seconds": 1.0,
    "telemetry_overhead_seconds": 1.0,
    "telemetry_overhead_disabled_seconds": 1.0,
    "table_fsync_build_seconds": 1.0,
    "table_fsync_build_warm_seconds": 1.0,
    "table_ssync_build_seconds": 1.0,
    "table_ssync_build_warm_seconds": 1.0,
    "n8_fsync_build_seconds": 1.0,
    "n8_ssync_build_seconds": 1.0,
    "recovery_candidates_per_second": 50.0,
    "serve_rps": 1000.0,
    "serve_p99_seconds": 0.01,
}


def _write(directory, name, timings, required=True):
    merged = {**_REQUIRED_DEFAULTS, **timings} if required else dict(timings)
    payload = {"python": "3.x", "platform": "test", "timings": merged}
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload))
    return path


# ---------------------------------------------------------------------------
# Census pins.
# ---------------------------------------------------------------------------

def test_every_pin_covers_all_roots():
    for (algorithm, mode), census in PINNED_CENSUS.items():
        assert sum(census.values()) == THEOREM2_ROOTS, (algorithm, mode)
        assert mode in ("fsync", "ssync")


def test_pins_are_monotone_across_the_rule_set_generations():
    """Each committed repair generation strictly improves FSYNC coverage."""
    base = census_ok(pinned_census("shibata-visibility2", "fsync"))
    synth = census_ok(pinned_census("shibata-visibility2-synth", "fsync"))
    synth2 = census_ok(pinned_census("shibata-visibility2-synth2", "fsync"))
    assert base < synth < synth2


def test_census_regressions_one_sided():
    baseline = {"gathered": 1, "safe": 100, "disconnected": 10}
    assert census_regressions(baseline, dict(baseline)) == ()
    # Improvement passes.
    assert census_regressions(baseline, {"gathered": 1, "safe": 110}) == ()
    # Fewer won roots fails.
    problems = census_regressions(baseline, {"gathered": 1, "safe": 90, "disconnected": 20})
    assert any("won roots" in p for p in problems)
    # A new failure class fails even when won roots hold.
    problems = census_regressions(
        baseline, {"gathered": 1, "safe": 100, "disconnected": 10, "livelock": 1}
    )
    assert any("livelock" in p for p in problems)


# ---------------------------------------------------------------------------
# The comparison script.
# ---------------------------------------------------------------------------

def test_identical_benchmarks_pass(bench_compare, tmp_path):
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    timings = {"sweep_seconds": 1.0, "fsync_root_census": {"gathered": 1, "safe": 10}}
    for directory in (baseline, candidate):
        _write(directory, "kernel", timings)
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "kernel"]
    )
    assert code == 0


def test_slowdown_beyond_tolerance_fails(bench_compare, tmp_path):
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    _write(baseline, "kernel", {"sweep_seconds": 1.0})
    _write(candidate, "kernel", {"sweep_seconds": 1.5})
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "kernel"]
    )
    assert code == 1


def test_slowdown_within_tolerance_passes(bench_compare, tmp_path):
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    _write(baseline, "kernel", {"sweep_seconds": 1.0})
    _write(candidate, "kernel", {"sweep_seconds": 1.2})
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "kernel"]
    )
    assert code == 0


def test_small_absolute_slowdowns_are_noise(bench_compare, tmp_path):
    """A 3x slowdown on a 10ms timing is runner noise, not a regression."""
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    _write(baseline, "kernel", {"tiny_seconds": 0.01})
    _write(candidate, "kernel", {"tiny_seconds": 0.03})
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "kernel"]
    )
    assert code == 0


def test_speedup_passes(bench_compare, tmp_path):
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    _write(baseline, "kernel", {"sweep_seconds": 2.0})
    _write(candidate, "kernel", {"sweep_seconds": 0.5})
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "kernel"]
    )
    assert code == 0


def test_census_regression_fails(bench_compare, tmp_path):
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    _write(baseline, "synth", {"learned_fsync_census": {"gathered": 1, "safe": 3333}})
    _write(candidate, "synth", {"learned_fsync_census": {"gathered": 1, "safe": 3300, "deadlock": 33}})
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "synth"]
    )
    assert code == 1


def test_census_improvement_passes(bench_compare, tmp_path):
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    _write(baseline, "synth", {"learned_fsync_census": {"gathered": 1, "safe": 3333, "disconnected": 318}})
    _write(candidate, "synth", {"learned_fsync_census": {"gathered": 1, "safe": 3651}})
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "synth"]
    )
    assert code == 0


def test_missing_gated_key_fails(bench_compare, tmp_path):
    """A benchmark that stops recording a pinned census or timing must not
    silently clear the gate."""
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    _write(baseline, "synth", {"learned_fsync_census": {"gathered": 1}, "x_seconds": 1.0})
    _write(candidate, "synth", {"x_seconds": 1.0})
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "synth"]
    )
    assert code == 1
    _write(candidate, "synth", {"learned_fsync_census": {"gathered": 1}})
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "synth"]
    )
    assert code == 1  # the timing key disappeared instead


def test_ignore_timings_is_advisory_but_census_still_gates(bench_compare, tmp_path):
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    _write(baseline, "kernel", {"sweep_seconds": 1.0, "c_census": {"safe": 5}})
    _write(candidate, "kernel", {"sweep_seconds": 9.0, "c_census": {"safe": 5}})
    args = ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "kernel"]
    assert bench_compare.main(args) == 1
    assert bench_compare.main(args + ["--ignore-timings"]) == 0
    _write(candidate, "kernel", {"sweep_seconds": 9.0, "c_census": {"safe": 4, "deadlock": 1}})
    assert bench_compare.main(args + ["--ignore-timings"]) == 1


def test_throughput_drop_beyond_tolerance_fails(bench_compare, tmp_path):
    """``*_rps`` keys gate one-sidedly: only a drop fails."""
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    _write(baseline, "serve", {"serve_rps": 1000.0})
    _write(candidate, "serve", {"serve_rps": 600.0})
    args = ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "serve"]
    assert bench_compare.main(args) == 1
    # advisory under --ignore-timings (cross-machine comparison)
    assert bench_compare.main(args + ["--ignore-timings"]) == 0


def test_throughput_improvement_and_small_drops_pass(bench_compare, tmp_path):
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    args = ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "serve"]
    # 2x faster passes (one-sided gate)
    _write(baseline, "serve", {"serve_rps": 1000.0})
    _write(candidate, "serve", {"serve_rps": 2000.0})
    assert bench_compare.main(args) == 0
    # a drop within the 25% tolerance passes
    _write(candidate, "serve", {"serve_rps": 800.0})
    assert bench_compare.main(args) == 0
    # a huge relative drop below the absolute noise floor passes
    _write(baseline, "serve", {"serve_rps": 8.0})
    _write(candidate, "serve", {"serve_rps": 4.0})
    assert bench_compare.main(args) == 0


def test_serve_required_keys_and_p99_gate(bench_compare, tmp_path):
    """The serve artefact must record rps + p99; p99 gates like any timing."""
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    args = ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "serve"]
    _write(baseline, "serve", {"serve_rps": 1000.0}, required=False)
    _write(candidate, "serve", {"serve_rps": 1000.0}, required=False)
    assert bench_compare.main(args) == 1  # serve_p99_seconds missing
    _write(baseline, "serve", {"serve_rps": 1000.0, "serve_p99_seconds": 0.1})
    _write(candidate, "serve", {"serve_rps": 1000.0, "serve_p99_seconds": 0.3})
    assert bench_compare.main(args) == 1  # p99 tripled past the noise floor


def test_disappearing_rps_key_fails(bench_compare, tmp_path):
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    _write(baseline, "serve", {"extra_rps": 500.0})
    _write(candidate, "serve", {})
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "serve"]
    )
    assert code == 1


def test_missing_candidate_fails(bench_compare, tmp_path):
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    _write(baseline, "kernel", {"sweep_seconds": 1.0})
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "kernel"]
    )
    assert code == 1


def test_multiple_names_aggregate(bench_compare, tmp_path):
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    for name in ("kernel", "explorer"):
        _write(baseline, name, {"x_seconds": 1.0})
        _write(candidate, name, {"x_seconds": 1.0})
    _write(baseline, "synth", {"x_seconds": 1.0})
    _write(candidate, "synth", {"x_seconds": 9.0})
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate)]
    )
    assert code == 1


def test_required_table_keys_must_be_recorded(bench_compare, tmp_path):
    """A candidate that stops recording the table-kernel timings fails the
    gate even when the baseline never had them (the required-key check is
    independent of the baseline's contents)."""
    baseline, candidate = tmp_path / "a", tmp_path / "b"
    baseline.mkdir(), candidate.mkdir()
    _write(baseline, "kernel", {"x_seconds": 1.0}, required=False)
    _write(candidate, "kernel", {"x_seconds": 1.0}, required=False)
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "kernel"]
    )
    assert code == 1
    _write(candidate, "kernel", {"x_seconds": 1.0})  # required keys restored
    _write(baseline, "kernel", {"x_seconds": 1.0})
    code = bench_compare.main(
        ["--baseline-dir", str(baseline), "--candidate-dir", str(candidate), "--names", "kernel"]
    )
    assert code == 0


def test_committed_baselines_compare_clean_against_themselves(bench_compare):
    """The real BENCH_*.json files pass the gate when unchanged."""
    root = _SCRIPT.parent.parent
    code = bench_compare.main(
        ["--baseline-dir", str(root), "--candidate-dir", str(root)]
    )
    assert code == 0


# ---------------------------------------------------------------------------
# The nightly census job (scripts/nightly_census.py).
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def nightly_census():
    script = _SCRIPT.parent / "nightly_census.py"
    spec = importlib.util.spec_from_file_location("nightly_census", script)
    module = importlib.util.module_from_spec(spec)
    sys.modules["nightly_census"] = module
    spec.loader.exec_module(module)
    return module


def test_nightly_census_reproduces_every_pin(nightly_census, tmp_path):
    """The full nightly job at test scale: every pinned census re-derives
    exactly from a fresh exhaustive exploration."""
    report_path = tmp_path / "census.json"
    code = nightly_census.main(["--output", str(report_path)])
    assert code == 0
    report = json.loads(report_path.read_text())
    assert report["failures"] == []
    assert len(report["checks"]) == (
        len(PINNED_CENSUS)
        + len(PINNED_CENSUS_N8)
        + len(PINNED_CENSUS_N9)
        + len(PINNED_CENSUS_N10)
    )
    assert all(check["matches"] for check in report["checks"])
    # The scale-out pins re-derive at n=8/n=9 on the table kernel and at
    # n=10 through the sharded disk tier.
    n8_checks = [check for check in report["checks"] if check["size"] == 8]
    assert len(n8_checks) == len(PINNED_CENSUS_N8)
    assert all(check["kernel"] == "table" for check in n8_checks)
    n9_checks = [check for check in report["checks"] if check["size"] == 9]
    assert len(n9_checks) == len(PINNED_CENSUS_N9)
    assert all(check["kernel"] == "table" for check in n9_checks)
    n10_checks = [check for check in report["checks"] if check["size"] == 10]
    assert len(n10_checks) == len(PINNED_CENSUS_N10)
    assert all(check["kernel"] == "sharded" for check in n10_checks)
