"""Reproducibility of seeded scheduler specs across kernels and rebuilds.

Pins the contract of ``random-subset:P:SEED``: the same spec produces the
same activation sequence — and therefore byte-identical traces — whether the
execution runs on the packed kernel, on the reference kernel, or on a
scheduler instance rebuilt from the spec string.
"""
import pytest

from repro.algorithms.visibility2 import ShibataGatheringAlgorithm
from repro.core.configuration import Configuration, line
from repro.core.engine import run_execution
from repro.core.scheduler import scheduler_from_spec
from repro.enumeration.polyhex import enumerate_connected_configurations

SPEC = "random-subset:0.5:42"

_CONFIGS = {
    "line": line(7),
    "figure54": Configuration([(0, 0), (0, 1), (1, 1), (1, -1), (2, -1), (2, 0), (-1, 1)]),
    "zigzag": Configuration([(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2), (3, 3)]),
}


def _trace_fingerprint(trace):
    return (
        trace.outcome,
        trace.termination_round,
        trace.total_moves,
        [
            (
                record.activated,
                tuple(sorted((pos, direction.name) for pos, direction in record.moves.items())),
                record.configuration.canonical_key(),
            )
            for record in trace.rounds
        ],
    )


@pytest.mark.parametrize("name", sorted(_CONFIGS))
def test_same_seed_same_trace_across_kernels(name):
    initial = _CONFIGS[name]
    algorithm = ShibataGatheringAlgorithm()
    traces = {}
    for kernel in ("packed", "reference"):
        trace = run_execution(
            initial,
            algorithm,
            scheduler=scheduler_from_spec(SPEC),
            max_rounds=120,
            record_rounds=True,
            kernel=kernel,
        )
        traces[kernel] = _trace_fingerprint(trace)
    assert traces["packed"] == traces["reference"]


def test_same_seed_same_trace_across_instances():
    """Two schedulers built from the same spec draw identical subsets."""
    initial = _CONFIGS["figure54"]
    algorithm = ShibataGatheringAlgorithm()
    first = run_execution(
        initial, algorithm, scheduler=scheduler_from_spec(SPEC),
        max_rounds=120, record_rounds=True,
    )
    second = run_execution(
        initial, algorithm, scheduler=scheduler_from_spec(SPEC),
        max_rounds=120, record_rounds=True,
    )
    assert _trace_fingerprint(first) == _trace_fingerprint(second)


def test_scheduler_instance_resets_between_executions():
    """Reusing one instance gives the same trace: run_execution resets it."""
    initial = _CONFIGS["line"]
    algorithm = ShibataGatheringAlgorithm()
    scheduler = scheduler_from_spec(SPEC)
    first = run_execution(
        initial, algorithm, scheduler=scheduler, max_rounds=120, record_rounds=True
    )
    second = run_execution(
        initial, algorithm, scheduler=scheduler, max_rounds=120, record_rounds=True
    )
    assert _trace_fingerprint(first) == _trace_fingerprint(second)


def test_different_seeds_diverge():
    initial = _CONFIGS["zigzag"]
    algorithm = ShibataGatheringAlgorithm()
    fingerprints = set()
    for seed in (1, 2, 3):
        trace = run_execution(
            initial,
            algorithm,
            scheduler=scheduler_from_spec(f"random-subset:0.5:{seed}"),
            max_rounds=60,
            record_rounds=True,
        )
        activations = tuple(record.activated for record in trace.rounds)
        fingerprints.add(activations)
    assert len(fingerprints) > 1


def test_seeded_sweep_outcomes_stable_across_kernels():
    """Aggregate check over many initial configurations (size 5)."""
    algorithm_packed = ShibataGatheringAlgorithm()
    algorithm_reference = ShibataGatheringAlgorithm()
    for config in enumerate_connected_configurations(5)[::9]:
        packed = run_execution(
            config, algorithm_packed,
            scheduler=scheduler_from_spec(SPEC), max_rounds=200, kernel="packed",
        )
        reference = run_execution(
            config, algorithm_reference,
            scheduler=scheduler_from_spec(SPEC), max_rounds=200, kernel="reference",
        )
        assert packed.outcome == reference.outcome
        assert packed.termination_round == reference.termination_round
        assert packed.total_moves == reference.total_moves
